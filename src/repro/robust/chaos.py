"""Deterministic, seedable fault injection for the robust synthesis cascade.

``tests/test_failure_injection.py`` corrupts *data* structures and asserts
the validators notice; this module extends that philosophy to *control
flow*: a :class:`ChaosHarness` hooks the stage boundaries of
:func:`repro.robust.synthesize` and injects three fault classes —

* ``"exception"`` — raise a :class:`ChaosFault` (deliberately **not** a
  :class:`~repro.errors.ReproError`, proving the cascade survives arbitrary
  exception types, not just its own);
* ``"deadline"`` — force the attempt's :class:`~repro.robust.SolverBudget`
  into exhaustion so the *solver's own cooperative checkpoint* raises
  mid-search (stages without a budget raise directly);
* ``"corruption"`` — silently corrupt the stage's output structure (a tap
  binding's shift, a netlist output wire) so only the end-to-end
  convolution self-check can catch it.

Injection is driven by a seeded :class:`random.Random`, so a given seed
replays the exact same fault sequence; ``injections`` records every fault
actually fired for test assertions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..arch.nodes import Ref
from ..core.sidc import TapBinding
from ..errors import BudgetExceeded, ReproError
from .budget import SolverBudget
from .degrade import STAGES

__all__ = ["FAULT_CLASSES", "ChaosFault", "ChaosHarness", "Injection"]

FAULT_CLASSES = ("exception", "deadline", "corruption")


class ChaosFault(RuntimeError):
    """An injected failure — intentionally outside the ReproError hierarchy."""


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired: where, what, and in which order."""

    index: int
    stage: str
    fault: str


class ChaosHarness:
    """Injects faults at the stage boundaries of the robust cascade.

    ``rate`` is the per-stage-visit injection probability; ``max_injections``
    caps the total faults fired (``None`` = unlimited, which with
    ``rate=1.0`` guarantees every attempt fails and the cascade must raise
    :class:`~repro.errors.DegradationError`).  ``stages`` and ``faults``
    restrict where and what to inject, enabling the exhaustive
    stage × fault-class test matrix.
    """

    def __init__(
        self,
        seed: int = 0,
        stages: Tuple[str, ...] = STAGES,
        faults: Tuple[str, ...] = FAULT_CLASSES,
        rate: float = 1.0,
        max_injections: Optional[int] = None,
    ) -> None:
        unknown = [s for s in stages if s not in STAGES]
        if unknown:
            raise ReproError(f"unknown stages {unknown!r}; choose from {STAGES}")
        unknown = [f for f in faults if f not in FAULT_CLASSES]
        if unknown:
            raise ReproError(
                f"unknown fault classes {unknown!r}; choose from {FAULT_CLASSES}"
            )
        if not stages or not faults:
            raise ReproError("need at least one stage and one fault class")
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {rate}")
        self.stages = tuple(stages)
        self.faults = tuple(faults)
        self.rate = rate
        self.max_injections = max_injections
        self.injections: List[Injection] = []
        self._rng = random.Random(seed)
        self._pending_corruption: Optional[str] = None

    def _draw(self, stage: str) -> Optional[str]:
        if stage not in self.stages:
            return None
        armed = 1 if self._pending_corruption is not None else 0
        if (
            self.max_injections is not None
            and len(self.injections) + armed >= self.max_injections
        ):
            return None
        if self._rng.random() >= self.rate:
            return None
        return self.faults[self._rng.randrange(len(self.faults))]

    def _record(self, stage: str, fault: str) -> None:
        self.injections.append(
            Injection(index=len(self.injections), stage=stage, fault=fault)
        )

    def before(self, stage: str, budget: Optional[SolverBudget] = None) -> None:
        """Stage-entry hook: may raise, exhaust the budget, or arm corruption."""
        fault = self._draw(stage)
        if fault is None:
            return
        if fault == "corruption":
            # Fires in transform() on this stage's output.
            self._pending_corruption = stage
            return
        self._record(stage, fault)
        if fault == "exception":
            raise ChaosFault(f"injected exception at stage {stage!r}")
        # fault == "deadline"
        if budget is not None:
            budget.exhaust(f"chaos-injected deadline at stage {stage!r}")
            # The solver's own cooperative checkpoint will raise mid-search;
            # stages that never consult the budget must still fail, so check
            # once here too.
            budget.checkpoint()
        else:
            raise BudgetExceeded(f"injected deadline at stage {stage!r}")

    def transform(self, stage: str, value):
        """Stage-exit hook: corrupt the stage's output if armed."""
        if self._pending_corruption != stage:
            return value
        self._pending_corruption = None
        self._record(stage, "corruption")
        if stage == "plan":
            return _corrupt_plan(value)
        return _corrupt_architecture(value)


def _corrupt_plan(plan):
    """Bump one tap binding's shift, bypassing its consistency check.

    The corrupted plan still lowers cleanly — the netlist simply computes the
    wrong coefficient for that tap — so only the convolution self-check in
    the robust cascade can catch it.
    """
    for i, binding in enumerate(plan.bindings):
        if binding.is_zero:
            continue
        broken = TapBinding.__new__(TapBinding)
        object.__setattr__(broken, "index", binding.index)
        object.__setattr__(broken, "coefficient", binding.coefficient)
        object.__setattr__(broken, "vertex", binding.vertex)
        object.__setattr__(broken, "shift", binding.shift + 1)
        object.__setattr__(broken, "sign", binding.sign)
        bindings = plan.bindings[:i] + (broken,) + plan.bindings[i + 1:]
        return replace(plan, bindings=bindings)
    raise ChaosFault("no corruptible binding: every tap is zero")


def _corrupt_architecture(architecture):
    """Re-wire one netlist output with an extra shift (silent data fault)."""
    netlist = architecture.netlist
    for name, ref in netlist.outputs.items():
        if ref is None:
            continue
        netlist._outputs[name] = Ref(
            node=ref.node, shift=ref.shift + 1, sign=ref.sign
        )
        return architecture
    raise ChaosFault("no corruptible output: every tap is zero")
