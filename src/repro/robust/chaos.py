"""Deterministic, seedable fault injection for the robust synthesis cascade.

``tests/test_failure_injection.py`` corrupts *data* structures and asserts
the validators notice; this module extends that philosophy to *control
flow*: a :class:`ChaosHarness` hooks the stage boundaries of
:func:`repro.robust.synthesize` and injects three fault classes —

* ``"exception"`` — raise a :class:`ChaosFault` (deliberately **not** a
  :class:`~repro.errors.ReproError`, proving the cascade survives arbitrary
  exception types, not just its own);
* ``"deadline"`` — force the attempt's :class:`~repro.robust.SolverBudget`
  into exhaustion so the *solver's own cooperative checkpoint* raises
  mid-search (stages without a budget raise directly);
* ``"corruption"`` — silently corrupt the stage's output structure (a tap
  binding's shift, a netlist output wire) so only the end-to-end
  convolution self-check can catch it.

Injection is driven by a seeded :class:`random.Random`, so a given seed
replays the exact same fault sequence; ``injections`` records every fault
actually fired for test assertions.

Beyond in-process stage faults, :class:`ProcessFaultPlan` describes
*process-level* fault schedules for the supervised sweep layer
(:mod:`repro.eval.supervisor`): seeded worker SIGKILLs, injected slow tasks,
and cache-write corruption / ENOSPC simulation.  Decisions are pure
functions of ``(seed, task key, attempt)`` via SHA-256 — independent of
execution order, interning, or ``PYTHONHASHSEED`` — so a fault sequence
replays identically across processes and runs.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Node, Ref
from ..core.sidc import TapBinding
from ..errors import BudgetExceeded, ReproError
from .budget import SolverBudget
from .degrade import STAGES

__all__ = [
    "FAULT_CLASSES",
    "MUTATION_OPERATORS",
    "PROCESS_FAULT_CLASSES",
    "CacheFaultInjector",
    "ChaosFault",
    "ChaosHarness",
    "Injection",
    "NetlistMutator",
    "ProcessFaultPlan",
    "ServiceFaultPlan",
    "StoreFaultInjector",
    "clone_netlist",
]

FAULT_CLASSES = ("exception", "deadline", "corruption")

#: Fault classes a :class:`ProcessFaultPlan` can schedule.
PROCESS_FAULT_CLASSES = ("kill", "slow", "cache_truncate", "cache_enospc")


class ChaosFault(RuntimeError):
    """An injected failure — intentionally outside the ReproError hierarchy."""


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired: where, what, and in which order."""

    index: int
    stage: str
    fault: str


class ChaosHarness:
    """Injects faults at the stage boundaries of the robust cascade.

    ``rate`` is the per-stage-visit injection probability; ``max_injections``
    caps the total faults fired (``None`` = unlimited, which with
    ``rate=1.0`` guarantees every attempt fails and the cascade must raise
    :class:`~repro.errors.DegradationError`).  ``stages`` and ``faults``
    restrict where and what to inject, enabling the exhaustive
    stage × fault-class test matrix.
    """

    def __init__(
        self,
        seed: int = 0,
        stages: Tuple[str, ...] = STAGES,
        faults: Tuple[str, ...] = FAULT_CLASSES,
        rate: float = 1.0,
        max_injections: Optional[int] = None,
    ) -> None:
        unknown = [s for s in stages if s not in STAGES]
        if unknown:
            raise ReproError(f"unknown stages {unknown!r}; choose from {STAGES}")
        unknown = [f for f in faults if f not in FAULT_CLASSES]
        if unknown:
            raise ReproError(
                f"unknown fault classes {unknown!r}; choose from {FAULT_CLASSES}"
            )
        if not stages or not faults:
            raise ReproError("need at least one stage and one fault class")
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {rate}")
        self.stages = tuple(stages)
        self.faults = tuple(faults)
        self.rate = rate
        self.max_injections = max_injections
        self.injections: List[Injection] = []
        self._rng = random.Random(seed)
        self._pending_corruption: Optional[str] = None

    def _draw(self, stage: str) -> Optional[str]:
        if stage not in self.stages:
            return None
        armed = 1 if self._pending_corruption is not None else 0
        if (
            self.max_injections is not None
            and len(self.injections) + armed >= self.max_injections
        ):
            return None
        if self._rng.random() >= self.rate:
            return None
        return self.faults[self._rng.randrange(len(self.faults))]

    def _record(self, stage: str, fault: str) -> None:
        self.injections.append(
            Injection(index=len(self.injections), stage=stage, fault=fault)
        )

    def before(self, stage: str, budget: Optional[SolverBudget] = None) -> None:
        """Stage-entry hook: may raise, exhaust the budget, or arm corruption."""
        fault = self._draw(stage)
        if fault is None:
            return
        if fault == "corruption":
            # Fires in transform() on this stage's output.
            self._pending_corruption = stage
            return
        self._record(stage, fault)
        if fault == "exception":
            raise ChaosFault(f"injected exception at stage {stage!r}")
        # fault == "deadline"
        if budget is not None:
            budget.exhaust(f"chaos-injected deadline at stage {stage!r}")
            # The solver's own cooperative checkpoint will raise mid-search;
            # stages that never consult the budget must still fail, so check
            # once here too.
            budget.checkpoint()
        else:
            raise BudgetExceeded(f"injected deadline at stage {stage!r}")

    def transform(self, stage: str, value):
        """Stage-exit hook: corrupt the stage's output if armed."""
        if self._pending_corruption != stage:
            return value
        self._pending_corruption = None
        self._record(stage, "corruption")
        if stage == "plan":
            return _corrupt_plan(value)
        return _corrupt_architecture(value)


def _corrupt_plan(plan):
    """Bump one tap binding's shift, bypassing its consistency check.

    The corrupted plan still lowers cleanly — the netlist simply computes the
    wrong coefficient for that tap — so only the convolution self-check in
    the robust cascade can catch it.
    """
    for i, binding in enumerate(plan.bindings):
        if binding.is_zero:
            continue
        broken = TapBinding.__new__(TapBinding)
        object.__setattr__(broken, "index", binding.index)
        object.__setattr__(broken, "coefficient", binding.coefficient)
        object.__setattr__(broken, "vertex", binding.vertex)
        object.__setattr__(broken, "shift", binding.shift + 1)
        object.__setattr__(broken, "sign", binding.sign)
        bindings = plan.bindings[:i] + (broken,) + plan.bindings[i + 1:]
        return replace(plan, bindings=bindings)
    raise ChaosFault("no corruptible binding: every tap is zero")


def _corrupt_architecture(architecture):
    """Re-wire one netlist output with an extra shift (silent data fault)."""
    netlist = architecture.netlist
    for name, ref in netlist.outputs.items():
        if ref is None:
            continue
        netlist._outputs[name] = Ref(
            node=ref.node, shift=ref.shift + 1, sign=ref.sign
        )
        return architecture
    raise ChaosFault("no corruptible output: every tap is zero")


# --- netlist mutation (verifier hardening) ----------------------------------

#: Mutation operators :class:`NetlistMutator` can draw from.  The first
#: group leaves the declared fundamentals stale (the structural audit must
#: catch them); the ``output_*`` and ``consistent_*`` groups produce
#: structurally immaculate netlists that compute the wrong filter (only
#: functional equivalence checking can catch them).
MUTATION_OPERATORS = (
    "operand_shift",
    "operand_sign",
    "operand_rewire",
    "node_value",
    "fundamental_entry",
    "output_shift",
    "output_sign",
    "output_rewire",
    "consistent_shift",
    "consistent_sign",
)


def _raw_ref(node: int, shift: int, sign: int) -> Ref:
    """Build a Ref bypassing its __post_init__ (mutants must not self-heal)."""
    ref = Ref.__new__(Ref)
    object.__setattr__(ref, "node", node)
    object.__setattr__(ref, "shift", shift)
    object.__setattr__(ref, "sign", sign)
    return ref


def _raw_node(node_id: int, value: int, a, b, label: str) -> Node:
    """Build a Node bypassing its __post_init__ consistency checks."""
    node = Node.__new__(Node)
    object.__setattr__(node, "id", node_id)
    object.__setattr__(node, "value", value)
    object.__setattr__(node, "a", a)
    object.__setattr__(node, "b", b)
    object.__setattr__(node, "label", label)
    return node


def clone_netlist(netlist: ShiftAddNetlist) -> ShiftAddNetlist:
    """Independent shallow-structure copy of a netlist.

    Nodes and refs are immutable, so sharing them is safe; the node list,
    fundamental table, and output map are fresh containers a mutation can
    rewrite without touching the original.
    """
    clone = ShiftAddNetlist.__new__(ShiftAddNetlist)
    clone._nodes = list(netlist.nodes)
    clone._fundamentals = netlist.fundamentals()
    clone._outputs = netlist.outputs
    return clone


def _recomputed_values(netlist: ShiftAddNetlist):
    """Actual value of every node from the wiring alone (None if unreadable)."""
    nodes = netlist.nodes
    computed = [0] * len(nodes)
    computed[0] = 1
    try:
        for node in nodes[1:]:
            computed[node.id] = node.a.value(computed[node.a.node]) + (
                node.b.value(computed[node.b.node])
            )
    except (IndexError, TypeError, AttributeError):
        return None
    return computed


def _invariants_hold(netlist: ShiftAddNetlist) -> bool:
    """Light structural re-check mirroring the verify-layer audit."""
    nodes = netlist.nodes
    computed = _recomputed_values(netlist)
    if computed is None:
        return False
    for node in nodes[1:]:
        for operand in (node.a, node.b):
            if operand is None or not 0 <= operand.node < node.id:
                return False
            if operand.shift < 0 or operand.sign not in (-1, 1):
                return False
        if node.value != computed[node.id] or computed[node.id] == 0:
            return False
    for odd, node_id in netlist.fundamentals().items():
        if not 0 <= node_id < len(nodes) or computed[node_id] != odd:
            return False
        if odd <= 0 or odd % 2 == 0:
            return False
    for ref in netlist.outputs.values():
        if ref is not None and not 0 <= ref.node < len(nodes):
            return False
    return True


def _output_signature(netlist: ShiftAddNetlist):
    """Actual integer carried by each output, from recomputed wiring."""
    computed = _recomputed_values(netlist)
    if computed is None:
        return None
    signature = {}
    for name, ref in netlist.outputs.items():
        signature[name] = None if ref is None else ref.value(computed[ref.node])
    return signature


class NetlistMutator:
    """Seeded single-fault mutant generator for verifier hardening.

    Every mutant is guaranteed *observably* faulty: either a structural
    invariant is broken (stale fundamentals, dangling wiring, corrupt
    table) or the output coefficient vector actually changes.  Draws that
    happen to produce a functionally equivalent, structurally valid
    netlist (e.g. rewiring an operand to a node of identical value) are
    discarded and redrawn — such a mutant is not a fault, and counting it
    would poison the kill-rate gate's denominator.

    The same seed replays the identical mutant sequence, so an escaped
    mutant reported by the gate is exactly reproducible.
    """

    def __init__(
        self,
        seed: int = 0,
        operators: Tuple[str, ...] = MUTATION_OPERATORS,
    ) -> None:
        unknown = [op for op in operators if op not in MUTATION_OPERATORS]
        if unknown:
            raise ReproError(
                f"unknown mutation operators {unknown!r}; choose from "
                f"{MUTATION_OPERATORS}"
            )
        if not operators:
            raise ReproError("need at least one mutation operator")
        self.operators = tuple(operators)
        self._rng = random.Random(seed)

    # -- single-operator applications (each on a fresh clone) --------------

    def _apply(self, operator: str, clone: ShiftAddNetlist) -> Optional[str]:
        """Apply ``operator`` in place; return a description or None if
        inapplicable to this netlist's shape."""
        rng = self._rng
        nodes = clone._nodes
        adder_ids = [node.id for node in nodes[1:]]
        live_outputs = [
            name for name, ref in clone._outputs.items() if ref is not None
        ]

        def pick_operand(node):
            side = rng.choice(("a", "b"))
            return side, getattr(node, side)

        if operator in ("operand_shift", "operand_sign", "consistent_shift",
                        "consistent_sign"):
            if not adder_ids:
                return None
            node_id = rng.choice(adder_ids)
            node = nodes[node_id]
            side, ref = pick_operand(node)
            if operator.endswith("shift"):
                new_ref = _raw_ref(ref.node, ref.shift + rng.randint(1, 3),
                                   ref.sign)
                change = f"shift {ref.shift}->{new_ref.shift}"
            else:
                new_ref = _raw_ref(ref.node, ref.shift, -ref.sign)
                change = f"sign {ref.sign}->{-ref.sign}"
            replacement = _raw_node(
                node.id, node.value,
                new_ref if side == "a" else node.a,
                new_ref if side == "b" else node.b,
                node.label,
            )
            nodes[node_id] = replacement
            if operator.startswith("consistent"):
                self._rebuild_consistency(clone)
                return (f"{operator}: node {node_id} operand {side} {change}, "
                        "values and fundamentals rebuilt to match")
            return f"{operator}: node {node_id} operand {side} {change}"

        if operator == "operand_rewire":
            candidates = [i for i in adder_ids if i >= 2]
            if not candidates:
                return None
            node_id = rng.choice(candidates)
            node = nodes[node_id]
            side, ref = pick_operand(node)
            targets = [i for i in range(node_id) if i != ref.node]
            if not targets:
                return None
            target = rng.choice(targets)
            new_ref = _raw_ref(target, ref.shift, ref.sign)
            nodes[node_id] = _raw_node(
                node.id, node.value,
                new_ref if side == "a" else node.a,
                new_ref if side == "b" else node.b,
                node.label,
            )
            return (f"operand_rewire: node {node_id} operand {side} "
                    f"node {ref.node}->{target}")

        if operator == "node_value":
            if not adder_ids:
                return None
            node_id = rng.choice(adder_ids)
            node = nodes[node_id]
            delta = rng.choice((-2, -1, 1, 2))
            nodes[node_id] = _raw_node(
                node.id, node.value + delta, node.a, node.b, node.label
            )
            return (f"node_value: node {node_id} declared "
                    f"{node.value}->{node.value + delta}")

        if operator == "fundamental_entry":
            if len(nodes) < 2:
                return None
            entries = list(clone._fundamentals.items())
            odd, nid = rng.choice(sorted(entries))
            targets = [i for i in range(len(nodes)) if i != nid]
            if not targets:
                return None
            target = rng.choice(targets)
            clone._fundamentals[odd] = target
            return f"fundamental_entry: {odd} repointed node {nid}->{target}"

        if operator in ("output_shift", "output_sign", "output_rewire"):
            if not live_outputs:
                return None
            name = rng.choice(sorted(live_outputs))
            ref = clone._outputs[name]
            if operator == "output_shift":
                new_ref = _raw_ref(ref.node, ref.shift + rng.randint(1, 3),
                                   ref.sign)
                change = f"shift {ref.shift}->{new_ref.shift}"
            elif operator == "output_sign":
                new_ref = _raw_ref(ref.node, ref.shift, -ref.sign)
                change = f"sign {ref.sign}->{-ref.sign}"
            else:
                targets = [i for i in range(len(nodes)) if i != ref.node]
                if not targets:
                    return None
                target = rng.choice(targets)
                new_ref = _raw_ref(target, ref.shift, ref.sign)
                change = f"node {ref.node}->{target}"
            clone._outputs[name] = new_ref
            return f"{operator}: output {name!r} {change}"

        raise ReproError(f"unknown mutation operator {operator!r}")

    @staticmethod
    def _rebuild_consistency(clone: ShiftAddNetlist) -> None:
        """Make declared values and the fundamental table match the (now
        corrupted) wiring, producing a structurally immaculate wrong filter."""
        nodes = clone._nodes
        computed = [0] * len(nodes)
        computed[0] = 1
        for node in nodes[1:]:
            value = node.a.value(computed[node.a.node]) + node.b.value(
                computed[node.b.node]
            )
            computed[node.id] = value
            if value != node.value:
                nodes[node.id] = _raw_node(
                    node.id, value, node.a, node.b, node.label
                )
        fundamentals = {1: 0}
        for node in nodes[1:]:
            value = computed[node.id]
            if value > 0 and value % 2 == 1 and value not in fundamentals:
                fundamentals[value] = node.id
        clone._fundamentals = fundamentals

    # -- public API ---------------------------------------------------------

    def mutate(
        self, netlist: ShiftAddNetlist, max_tries: int = 64
    ) -> Tuple[str, ShiftAddNetlist]:
        """One observably faulty mutant of ``netlist`` (which is untouched)."""
        baseline = _output_signature(netlist)
        for _ in range(max_tries):
            operator = self.operators[self._rng.randrange(len(self.operators))]
            clone = clone_netlist(netlist)
            description = self._apply(operator, clone)
            if description is None:
                continue
            if not _invariants_hold(clone):
                return description, clone
            if _output_signature(clone) != baseline:
                return description, clone
            # Functionally equivalent and structurally valid — not a fault.
        raise ChaosFault(
            f"could not derive an observable mutant in {max_tries} draws "
            f"(netlist of {len(netlist)} nodes, operators {self.operators!r})"
        )

    def mutants(self, netlist: ShiftAddNetlist, count: int):
        """Yield ``count`` independent ``(description, mutant)`` pairs."""
        if count < 0:
            raise ReproError(f"mutant count must be >= 0, got {count}")
        for _ in range(count):
            yield self.mutate(netlist)


# --- process-level fault schedules ------------------------------------------


def _stable_unit(seed: int, salt: str, key: str) -> float:
    """A uniform draw in [0, 1) that is a pure function of its arguments.

    SHA-256 based so the same (seed, salt, key) triple draws the same value
    in every process — the property that makes process-level fault
    sequences replayable regardless of worker scheduling.
    """
    digest = hashlib.sha256(f"{seed}\x00{salt}\x00{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A deterministic schedule of process-level faults for one sweep.

    Picklable (sent to pool workers via the task tuple) and stateless:
    every decision is a pure function of ``(seed, task key, attempt)``, so
    the parent and any worker agree on what fails where, and a rerun with
    the same plan replays the identical fault sequence.

    ``kill_rate`` selects tasks whose first ``kills_per_task`` attempts
    SIGKILL their worker (recoverable: retries succeed); ``poison_tasks``
    lists task keys that kill on *every* attempt (the supervisor must
    quarantine them).  ``slow_rate``/``slow_s`` injects sleeps to simulate
    stragglers, and the ``cache_*_rate`` knobs arm a
    :class:`CacheFaultInjector` that corrupts or ENOSPC-fails disk-cache
    writes.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kills_per_task: int = 1
    poison_tasks: Tuple[str, ...] = ()
    slow_rate: float = 0.0
    slow_s: float = 0.05
    cache_truncate_rate: float = 0.0
    cache_enospc_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "slow_rate", "cache_truncate_rate",
                     "cache_enospc_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.kills_per_task < 0:
            raise ReproError(
                f"kills_per_task must be >= 0, got {self.kills_per_task}"
            )
        if self.slow_s < 0.0:
            raise ReproError(f"slow_s must be >= 0, got {self.slow_s}")

    def should_kill(self, key: str, attempt: int) -> bool:
        """Whether this attempt of task ``key`` SIGKILLs its worker."""
        if key in self.poison_tasks:
            return True
        if attempt >= self.kills_per_task:
            return False
        return _stable_unit(self.seed, "kill", key) < self.kill_rate

    def slow_delay(self, key: str) -> float:
        """Seconds of injected straggler delay for task ``key`` (0 = none)."""
        if _stable_unit(self.seed, "slow", key) < self.slow_rate:
            return self.slow_s
        return 0.0

    def apply_worker_faults(self, key: str, attempt: int) -> None:
        """Fire this task's worker-side faults: sleep, then maybe die.

        Called at task entry inside the worker.  The kill is a genuine
        ``SIGKILL`` of the worker's own process — the supervisor under test
        sees a real :class:`~concurrent.futures.process.BrokenProcessPool`,
        not a simulated exception.
        """
        delay = self.slow_delay(key)
        if delay > 0.0:
            time.sleep(delay)
        if self.should_kill(key, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def cache_injector(self) -> Optional["CacheFaultInjector"]:
        """The cache-write fault injector this plan calls for, if any."""
        if self.cache_truncate_rate <= 0.0 and self.cache_enospc_rate <= 0.0:
            return None
        return CacheFaultInjector(
            seed=self.seed,
            truncate_rate=self.cache_truncate_rate,
            enospc_rate=self.cache_enospc_rate,
        )


@dataclass(frozen=True)
class CacheFaultInjector:
    """Deterministic write-fault decisions for :class:`~repro.eval.cache.DiskCache`.

    Installed via :func:`repro.eval.cache.install_fault_injector`; consulted
    once per ``put``.  ``"truncate"`` persists a torn JSON body (simulating
    filesystem corruption under a crash), ``"enospc"`` raises
    ``OSError(ENOSPC)`` before any byte is written (simulating a full disk).
    Draws are keyed by the cache key, so the same entry fails the same way
    in every process.
    """

    seed: int = 0
    truncate_rate: float = 0.0
    enospc_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("truncate_rate", "enospc_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")

    def draw_put(self, key: str) -> Optional[str]:
        """``"truncate"``, ``"enospc"``, or ``None`` for this cache write."""
        if _stable_unit(self.seed, "cache_enospc", key) < self.enospc_rate:
            return "enospc"
        if _stable_unit(self.seed, "cache_truncate", key) < self.truncate_rate:
            return "truncate"
        return None

    def enospc_error(self, key: str) -> OSError:
        """The ENOSPC ``OSError`` to raise for ``key``'s write."""
        return OSError(
            errno.ENOSPC, f"chaos: no space left on device (cache key {key})"
        )


@dataclass(frozen=True)
class StoreFaultInjector:
    """Deterministic WAL-append fault decisions for the service job store.

    Installed via ``JobStore(..., fault_injector=...)``; consulted once per
    append.  ``"enospc"`` raises ``OSError(ENOSPC)`` *before* the record
    reaches the log, exercising the store's rollback path: the job must
    surface as a 503 with ``Retry-After`` and never be acknowledged, not
    crash the server or leave a phantom in-memory job.  Draws are keyed by
    ``(job_id, append ordinal)`` so the same job can fail its first append
    and succeed its retry — the shape a client-visible 503-then-retry
    certification needs.
    """

    seed: int = 0
    enospc_rate: float = 0.0
    #: Fail at most this many appends in total (None = unlimited).
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.enospc_rate <= 1.0:
            raise ReproError(
                f"enospc_rate must be in [0, 1], got {self.enospc_rate}"
            )
        # Mutable bookkeeping on a frozen dataclass: ordinals and the
        # fault count live in a plain dict slipped past __setattr__.
        object.__setattr__(self, "_state", {"ordinals": {}, "fired": 0})

    def draw_append(self, job_id: str) -> Optional[str]:
        """``"enospc"`` or ``None`` for this append of ``job_id``."""
        state = self._state
        ordinal = state["ordinals"].get(job_id, 0)
        state["ordinals"][job_id] = ordinal + 1
        if self.max_faults is not None and state["fired"] >= self.max_faults:
            return None
        key = f"{job_id}#{ordinal}"
        if _stable_unit(self.seed, "store_enospc", key) < self.enospc_rate:
            state["fired"] += 1
            return "enospc"
        return None

    def enospc_error(self, job_id: str) -> OSError:
        """The ENOSPC ``OSError`` to raise for ``job_id``'s append."""
        return OSError(
            errno.ENOSPC, f"chaos: no space left on device (job {job_id})"
        )


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A deterministic fault schedule for the job service under test.

    Composes the process-level plan (worker kills, cache faults — threaded
    into every sweep the service runs) with *service-level* load patterns:
    :meth:`flood_specs` enumerates a deterministic set of distinct job
    specs for request-flood tests, spread round-robin across
    ``flood_tenants`` synthetic tenants so the fairness and per-tenant
    shedding paths are exercised, not just the global depth cap.

    Like every chaos schedule in this module the plan is a pure function
    of its fields — two test processes (e.g. a killed server and its
    restarted successor) derive the identical flood, so invariants can be
    asserted across the restart boundary.
    """

    seed: int = 0
    process: Optional[ProcessFaultPlan] = None
    flood_jobs: int = 8
    flood_tenants: int = 2

    #: The distinct (filter_index, wordlength) design points floods draw
    #: from — small filters × small widths so a flood is cheap to absorb.
    _FLOOD_FILTERS = (0, 1, 2, 3)
    _FLOOD_WIDTHS = (6, 7, 8)

    def __post_init__(self) -> None:
        if self.flood_jobs < 0:
            raise ReproError(
                f"flood_jobs must be >= 0, got {self.flood_jobs}"
            )
        if self.flood_tenants < 1:
            raise ReproError(
                f"flood_tenants must be >= 1, got {self.flood_tenants}"
            )
        limit = len(self._FLOOD_FILTERS) * len(self._FLOOD_WIDTHS)
        if self.flood_jobs > limit:
            raise ReproError(
                f"flood_jobs must be <= {limit} (distinct design points), "
                f"got {self.flood_jobs}"
            )

    def flood_specs(self) -> Tuple[dict, ...]:
        """Deterministic distinct job specs for a request-flood test.

        Every spec names a different (filter, wordlength) design point, so
        the service's idempotent-submission collapse cannot shrink the
        flood; tenants cycle ``tenant-0..tenant-N`` so per-tenant limits
        and round-robin draining both come into play.  The *order* is
        seed-shuffled (deterministically) so depth limits are not always
        hit by the same tenant.
        """
        points = [
            (f, w) for f in self._FLOOD_FILTERS for w in self._FLOOD_WIDTHS
        ]
        points.sort(
            key=lambda p: _stable_unit(self.seed, "flood", f"{p[0]}:{p[1]}")
        )
        specs = []
        for index, (filter_index, wordlength) in enumerate(
            points[: self.flood_jobs]
        ):
            specs.append({
                "experiments": ["fig6"],
                "filters": [filter_index],
                "wordlengths": [wordlength],
                "tenant": f"tenant-{index % self.flood_tenants}",
            })
        return tuple(specs)
