"""Deterministic, seedable fault injection for the robust synthesis cascade.

``tests/test_failure_injection.py`` corrupts *data* structures and asserts
the validators notice; this module extends that philosophy to *control
flow*: a :class:`ChaosHarness` hooks the stage boundaries of
:func:`repro.robust.synthesize` and injects three fault classes —

* ``"exception"`` — raise a :class:`ChaosFault` (deliberately **not** a
  :class:`~repro.errors.ReproError`, proving the cascade survives arbitrary
  exception types, not just its own);
* ``"deadline"`` — force the attempt's :class:`~repro.robust.SolverBudget`
  into exhaustion so the *solver's own cooperative checkpoint* raises
  mid-search (stages without a budget raise directly);
* ``"corruption"`` — silently corrupt the stage's output structure (a tap
  binding's shift, a netlist output wire) so only the end-to-end
  convolution self-check can catch it.

Injection is driven by a seeded :class:`random.Random`, so a given seed
replays the exact same fault sequence; ``injections`` records every fault
actually fired for test assertions.

Beyond in-process stage faults, :class:`ProcessFaultPlan` describes
*process-level* fault schedules for the supervised sweep layer
(:mod:`repro.eval.supervisor`): seeded worker SIGKILLs, injected slow tasks,
and cache-write corruption / ENOSPC simulation.  Decisions are pure
functions of ``(seed, task key, attempt)`` via SHA-256 — independent of
execution order, interning, or ``PYTHONHASHSEED`` — so a fault sequence
replays identically across processes and runs.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..arch.nodes import Ref
from ..core.sidc import TapBinding
from ..errors import BudgetExceeded, ReproError
from .budget import SolverBudget
from .degrade import STAGES

__all__ = [
    "FAULT_CLASSES",
    "PROCESS_FAULT_CLASSES",
    "CacheFaultInjector",
    "ChaosFault",
    "ChaosHarness",
    "Injection",
    "ProcessFaultPlan",
]

FAULT_CLASSES = ("exception", "deadline", "corruption")

#: Fault classes a :class:`ProcessFaultPlan` can schedule.
PROCESS_FAULT_CLASSES = ("kill", "slow", "cache_truncate", "cache_enospc")


class ChaosFault(RuntimeError):
    """An injected failure — intentionally outside the ReproError hierarchy."""


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired: where, what, and in which order."""

    index: int
    stage: str
    fault: str


class ChaosHarness:
    """Injects faults at the stage boundaries of the robust cascade.

    ``rate`` is the per-stage-visit injection probability; ``max_injections``
    caps the total faults fired (``None`` = unlimited, which with
    ``rate=1.0`` guarantees every attempt fails and the cascade must raise
    :class:`~repro.errors.DegradationError`).  ``stages`` and ``faults``
    restrict where and what to inject, enabling the exhaustive
    stage × fault-class test matrix.
    """

    def __init__(
        self,
        seed: int = 0,
        stages: Tuple[str, ...] = STAGES,
        faults: Tuple[str, ...] = FAULT_CLASSES,
        rate: float = 1.0,
        max_injections: Optional[int] = None,
    ) -> None:
        unknown = [s for s in stages if s not in STAGES]
        if unknown:
            raise ReproError(f"unknown stages {unknown!r}; choose from {STAGES}")
        unknown = [f for f in faults if f not in FAULT_CLASSES]
        if unknown:
            raise ReproError(
                f"unknown fault classes {unknown!r}; choose from {FAULT_CLASSES}"
            )
        if not stages or not faults:
            raise ReproError("need at least one stage and one fault class")
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {rate}")
        self.stages = tuple(stages)
        self.faults = tuple(faults)
        self.rate = rate
        self.max_injections = max_injections
        self.injections: List[Injection] = []
        self._rng = random.Random(seed)
        self._pending_corruption: Optional[str] = None

    def _draw(self, stage: str) -> Optional[str]:
        if stage not in self.stages:
            return None
        armed = 1 if self._pending_corruption is not None else 0
        if (
            self.max_injections is not None
            and len(self.injections) + armed >= self.max_injections
        ):
            return None
        if self._rng.random() >= self.rate:
            return None
        return self.faults[self._rng.randrange(len(self.faults))]

    def _record(self, stage: str, fault: str) -> None:
        self.injections.append(
            Injection(index=len(self.injections), stage=stage, fault=fault)
        )

    def before(self, stage: str, budget: Optional[SolverBudget] = None) -> None:
        """Stage-entry hook: may raise, exhaust the budget, or arm corruption."""
        fault = self._draw(stage)
        if fault is None:
            return
        if fault == "corruption":
            # Fires in transform() on this stage's output.
            self._pending_corruption = stage
            return
        self._record(stage, fault)
        if fault == "exception":
            raise ChaosFault(f"injected exception at stage {stage!r}")
        # fault == "deadline"
        if budget is not None:
            budget.exhaust(f"chaos-injected deadline at stage {stage!r}")
            # The solver's own cooperative checkpoint will raise mid-search;
            # stages that never consult the budget must still fail, so check
            # once here too.
            budget.checkpoint()
        else:
            raise BudgetExceeded(f"injected deadline at stage {stage!r}")

    def transform(self, stage: str, value):
        """Stage-exit hook: corrupt the stage's output if armed."""
        if self._pending_corruption != stage:
            return value
        self._pending_corruption = None
        self._record(stage, "corruption")
        if stage == "plan":
            return _corrupt_plan(value)
        return _corrupt_architecture(value)


def _corrupt_plan(plan):
    """Bump one tap binding's shift, bypassing its consistency check.

    The corrupted plan still lowers cleanly — the netlist simply computes the
    wrong coefficient for that tap — so only the convolution self-check in
    the robust cascade can catch it.
    """
    for i, binding in enumerate(plan.bindings):
        if binding.is_zero:
            continue
        broken = TapBinding.__new__(TapBinding)
        object.__setattr__(broken, "index", binding.index)
        object.__setattr__(broken, "coefficient", binding.coefficient)
        object.__setattr__(broken, "vertex", binding.vertex)
        object.__setattr__(broken, "shift", binding.shift + 1)
        object.__setattr__(broken, "sign", binding.sign)
        bindings = plan.bindings[:i] + (broken,) + plan.bindings[i + 1:]
        return replace(plan, bindings=bindings)
    raise ChaosFault("no corruptible binding: every tap is zero")


def _corrupt_architecture(architecture):
    """Re-wire one netlist output with an extra shift (silent data fault)."""
    netlist = architecture.netlist
    for name, ref in netlist.outputs.items():
        if ref is None:
            continue
        netlist._outputs[name] = Ref(
            node=ref.node, shift=ref.shift + 1, sign=ref.sign
        )
        return architecture
    raise ChaosFault("no corruptible output: every tap is zero")


# --- process-level fault schedules ------------------------------------------


def _stable_unit(seed: int, salt: str, key: str) -> float:
    """A uniform draw in [0, 1) that is a pure function of its arguments.

    SHA-256 based so the same (seed, salt, key) triple draws the same value
    in every process — the property that makes process-level fault
    sequences replayable regardless of worker scheduling.
    """
    digest = hashlib.sha256(f"{seed}\x00{salt}\x00{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A deterministic schedule of process-level faults for one sweep.

    Picklable (sent to pool workers via the task tuple) and stateless:
    every decision is a pure function of ``(seed, task key, attempt)``, so
    the parent and any worker agree on what fails where, and a rerun with
    the same plan replays the identical fault sequence.

    ``kill_rate`` selects tasks whose first ``kills_per_task`` attempts
    SIGKILL their worker (recoverable: retries succeed); ``poison_tasks``
    lists task keys that kill on *every* attempt (the supervisor must
    quarantine them).  ``slow_rate``/``slow_s`` injects sleeps to simulate
    stragglers, and the ``cache_*_rate`` knobs arm a
    :class:`CacheFaultInjector` that corrupts or ENOSPC-fails disk-cache
    writes.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kills_per_task: int = 1
    poison_tasks: Tuple[str, ...] = ()
    slow_rate: float = 0.0
    slow_s: float = 0.05
    cache_truncate_rate: float = 0.0
    cache_enospc_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "slow_rate", "cache_truncate_rate",
                     "cache_enospc_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.kills_per_task < 0:
            raise ReproError(
                f"kills_per_task must be >= 0, got {self.kills_per_task}"
            )
        if self.slow_s < 0.0:
            raise ReproError(f"slow_s must be >= 0, got {self.slow_s}")

    def should_kill(self, key: str, attempt: int) -> bool:
        """Whether this attempt of task ``key`` SIGKILLs its worker."""
        if key in self.poison_tasks:
            return True
        if attempt >= self.kills_per_task:
            return False
        return _stable_unit(self.seed, "kill", key) < self.kill_rate

    def slow_delay(self, key: str) -> float:
        """Seconds of injected straggler delay for task ``key`` (0 = none)."""
        if _stable_unit(self.seed, "slow", key) < self.slow_rate:
            return self.slow_s
        return 0.0

    def apply_worker_faults(self, key: str, attempt: int) -> None:
        """Fire this task's worker-side faults: sleep, then maybe die.

        Called at task entry inside the worker.  The kill is a genuine
        ``SIGKILL`` of the worker's own process — the supervisor under test
        sees a real :class:`~concurrent.futures.process.BrokenProcessPool`,
        not a simulated exception.
        """
        delay = self.slow_delay(key)
        if delay > 0.0:
            time.sleep(delay)
        if self.should_kill(key, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def cache_injector(self) -> Optional["CacheFaultInjector"]:
        """The cache-write fault injector this plan calls for, if any."""
        if self.cache_truncate_rate <= 0.0 and self.cache_enospc_rate <= 0.0:
            return None
        return CacheFaultInjector(
            seed=self.seed,
            truncate_rate=self.cache_truncate_rate,
            enospc_rate=self.cache_enospc_rate,
        )


@dataclass(frozen=True)
class CacheFaultInjector:
    """Deterministic write-fault decisions for :class:`~repro.eval.cache.DiskCache`.

    Installed via :func:`repro.eval.cache.install_fault_injector`; consulted
    once per ``put``.  ``"truncate"`` persists a torn JSON body (simulating
    filesystem corruption under a crash), ``"enospc"`` raises
    ``OSError(ENOSPC)`` before any byte is written (simulating a full disk).
    Draws are keyed by the cache key, so the same entry fails the same way
    in every process.
    """

    seed: int = 0
    truncate_rate: float = 0.0
    enospc_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("truncate_rate", "enospc_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")

    def draw_put(self, key: str) -> Optional[str]:
        """``"truncate"``, ``"enospc"``, or ``None`` for this cache write."""
        if _stable_unit(self.seed, "cache_enospc", key) < self.enospc_rate:
            return "enospc"
        if _stable_unit(self.seed, "cache_truncate", key) < self.truncate_rate:
            return "truncate"
        return None

    def enospc_error(self, key: str) -> OSError:
        """The ENOSPC ``OSError`` to raise for ``key``'s write."""
        return OSError(
            errno.ENOSPC, f"chaos: no space left on device (cache key {key})"
        )
