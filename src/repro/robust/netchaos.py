"""A fault-injecting TCP proxy for certifying the service over a bad wire.

Every chaos test before this module injected faults *in-process* (stage
hooks, worker SIGKILLs) or via signals; nothing ever exercised the network
boundary between a client and the job service.  :class:`NetChaosProxy`
closes that gap: it listens on a local port, forwards HTTP traffic to the
real server, and — per connection, deterministically — injects the fault
classes a real network serves up:

* ``"refuse"``    — the connection is torn down the instant it is accepted
  (an RST, indistinguishable from a dead or refusing endpoint);
* ``"reset"``     — the request is forwarded and the *response* is cut off
  by an RST after ``reset_after_bytes`` bytes (the ambiguous mid-response
  failure that makes idempotent resubmission necessary);
* ``"hang"``      — the request is read and then nothing happens for
  ``hang_s`` (the client's per-request timeout must fire);
* ``"latency"``   — the response is delayed by ``latency_s`` plus a
  seeded jitter in ``[0, jitter_s)``;
* ``"truncate"``  — only the first ``truncate_bytes`` bytes of the
  response are relayed, then a clean close (a short body against
  ``Content-Length`` — the client must detect and retry, never consume);
* ``"garbage"``   — seeded random bytes instead of a response;
* ``"error_burst"``— a canned 503 (even connections) or 500 (odd) without
  ever contacting the upstream, ``Retry-After: 0`` included.

Decisions follow the :mod:`repro.robust.chaos` convention: a pure
SHA-256 function of ``(seed, fault class, connection index)``, so a given
seed replays the exact fault sequence in any process, and the recorded
``injections`` list lets tests assert which faults actually fired.

The proxy is deliberately one-request-per-connection (it reads a full
HTTP message, gets the full response, applies the fault, closes).  The
resilient client opens a fresh connection per request anyway — pooled
connections and chaos proxies both punish anything else.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ReproError
from ..obs import metrics as obs_metrics
from .chaos import _stable_unit

__all__ = [
    "NET_FAULT_CLASSES",
    "NetChaosProxy",
    "NetFaultPlan",
    "NetInjection",
]

#: Fault classes a :class:`NetFaultPlan` can schedule, in draw priority.
NET_FAULT_CLASSES = (
    "refuse", "reset", "hang", "truncate", "garbage", "error_burst",
    "latency",
)

_CANNED_503 = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: 0\r\n"
    b"Content-Length: 54\r\n"
    b"Connection: close\r\n\r\n"
    b'{"error": "ChaosInjected", "message": "injected 503"}\n'
)
_CANNED_500 = (
    b"HTTP/1.1 500 Internal Server Error\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 54\r\n"
    b"Connection: close\r\n\r\n"
    b'{"error": "ChaosInjected", "message": "injected 500"}\n'
)


@dataclass(frozen=True)
class NetInjection:
    """One network fault that actually fired, in connection order."""

    conn_index: int
    fault: str


@dataclass(frozen=True)
class NetFaultPlan:
    """A deterministic per-connection fault schedule for the proxy.

    Rates are independent per fault class; when several would fire on the
    same connection the first in :data:`NET_FAULT_CLASSES` order wins, so
    a plan's behavior never depends on dict ordering or wall clock.
    ``latency`` composes differently: it delays the response of an
    otherwise-clean connection (a fault that slows you down is not a
    fault that kills you).
    """

    seed: int = 0
    refuse_rate: float = 0.0
    reset_rate: float = 0.0
    reset_after_bytes: int = 64
    hang_rate: float = 0.0
    hang_s: float = 1.0
    truncate_rate: float = 0.0
    truncate_bytes: int = 128
    garbage_rate: float = 0.0
    error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.02
    jitter_s: float = 0.02

    def __post_init__(self) -> None:
        for name in ("refuse_rate", "reset_rate", "hang_rate",
                     "truncate_rate", "garbage_rate", "error_rate",
                     "latency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        for name in ("reset_after_bytes", "truncate_bytes"):
            if getattr(self, name) < 1:
                raise ReproError(f"{name} must be >= 1")
        for name in ("hang_s", "latency_s", "jitter_s"):
            if getattr(self, name) < 0.0:
                raise ReproError(f"{name} must be >= 0")

    @classmethod
    def storm(cls, seed: int = 0, rate: float = 0.25) -> "NetFaultPlan":
        """Every fault class armed at once — the certification mixture."""
        return cls(
            seed=seed, refuse_rate=rate, reset_rate=rate, hang_rate=rate,
            hang_s=0.5, truncate_rate=rate, garbage_rate=rate,
            error_rate=rate, latency_rate=rate,
        )

    _RATES = {
        "refuse": "refuse_rate",
        "reset": "reset_rate",
        "hang": "hang_rate",
        "truncate": "truncate_rate",
        "garbage": "garbage_rate",
        "error_burst": "error_rate",
        "latency": "latency_rate",
    }

    def draw(self, conn_index: int) -> Optional[str]:
        """The fault class for connection ``conn_index``, or ``None``."""
        key = str(conn_index)
        for fault in NET_FAULT_CLASSES:
            rate = getattr(self, self._RATES[fault])
            if rate > 0.0 and _stable_unit(self.seed, fault, key) < rate:
                return fault
        return None

    def latency_for(self, conn_index: int) -> float:
        """Injected delay for a ``latency`` connection (seeded jitter)."""
        jitter = self.jitter_s * _stable_unit(
            self.seed, "latency_jitter", str(conn_index)
        )
        return self.latency_s + jitter

    def garbage_for(self, conn_index: int, length: int = 256) -> bytes:
        """Deterministic garbage bytes for a ``garbage`` connection."""
        out = bytearray()
        counter = 0
        while len(out) < length:
            unit = _stable_unit(
                self.seed, "garbage", f"{conn_index}:{counter}"
            )
            out += int(unit * 2**32).to_bytes(4, "big")
            counter += 1
        return bytes(out[:length])


def _recv_http_message(sock: socket.socket) -> bytes:
    """Read one full HTTP message (headers + Content-Length body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def _rst_close(sock: socket.socket) -> None:
    """Close with SO_LINGER(1, 0): an abortive RST, not a graceful FIN."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    sock.close()


class NetChaosProxy:
    """A seeded fault-injecting TCP proxy in front of one HTTP server."""

    def __init__(
        self,
        upstream_port: int,
        plan: NetFaultPlan,
        upstream_host: str = "127.0.0.1",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.plan = plan
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_index = 0
        #: Every fault that actually fired, in connection order.
        self.injections: List[NetInjection] = []
        #: Total connections handled (faulted or clean).
        self.connections = 0

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def retarget(self, upstream_port: int) -> None:
        """Point the proxy at a new upstream port (server restarted)."""
        with self._lock:
            self.upstream_port = upstream_port

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "NetChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netchaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def __enter__(self) -> "NetChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def faults_fired(self) -> Tuple[str, ...]:
        """The distinct fault classes that have fired so far."""
        with self._lock:
            return tuple(sorted({i.fault for i in self.injections}))

    # -- the wire -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                index = self._conn_index
                self._conn_index += 1
                self.connections += 1
            thread = threading.Thread(
                target=self._handle,
                args=(conn, index),
                name=f"netchaos-conn-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _record(self, index: int, fault: str) -> None:
        with self._lock:
            self.injections.append(NetInjection(index, fault))
        obs_metrics.counter(
            "repro_netchaos_faults_total", fault=fault
        ).inc()

    def _handle(self, conn: socket.socket, index: int) -> None:
        conn.settimeout(30.0)
        fault = self.plan.draw(index)
        try:
            if fault == "refuse":
                self._record(index, fault)
                _rst_close(conn)
                return
            if fault == "error_burst":
                self._record(index, fault)
                _recv_http_message(conn)
                conn.sendall(
                    _CANNED_503 if index % 2 == 0 else _CANNED_500
                )
                conn.close()
                return
            if fault == "garbage":
                self._record(index, fault)
                _recv_http_message(conn)
                conn.sendall(self.plan.garbage_for(index))
                conn.close()
                return
            if fault == "hang":
                self._record(index, fault)
                _recv_http_message(conn)
                # Hold the socket open, saying nothing, until the client's
                # per-request timeout gives up on us.
                self._closing.wait(self.plan.hang_s)
                conn.close()
                return

            request = _recv_http_message(conn)
            if not request:
                conn.close()
                return
            response = self._roundtrip_upstream(request)
            if response is None:
                # Upstream itself is down (e.g. mid-restart): behave like
                # a refused connection; the client's retry loop owns this.
                _rst_close(conn)
                return
            if fault == "latency":
                self._record(index, fault)
                time.sleep(self.plan.latency_for(index))
                conn.sendall(response)
                conn.close()
                return
            if fault == "truncate":
                self._record(index, fault)
                conn.sendall(response[: self.plan.truncate_bytes])
                conn.close()
                return
            if fault == "reset":
                self._record(index, fault)
                conn.sendall(response[: self.plan.reset_after_bytes])
                _rst_close(conn)
                return
            conn.sendall(response)
            conn.close()
        except OSError:
            try:
                conn.close()
            except OSError:
                pass
        finally:
            if threading.current_thread() in self._threads:
                self._threads.remove(threading.current_thread())

    def _roundtrip_upstream(self, request: bytes) -> Optional[bytes]:
        with self._lock:
            target = (self.upstream_host, self.upstream_port)
        try:
            upstream = socket.create_connection(target, timeout=30.0)
        except OSError:
            return None
        try:
            upstream.sendall(request)
            response = _recv_http_message(upstream)
            return response or None
        except OSError:
            return None
        finally:
            try:
                upstream.close()
            except OSError:
                pass
