"""Cooperative solver budgets: wall-clock deadlines plus node/iteration caps.

Every NP-hard search in the flow (exact branch-and-bound cover, greedy cover
over huge instances, MSD enumeration, coefficient local search) accepts an
optional :class:`SolverBudget` and calls :meth:`SolverBudget.spend` at its
inner-loop checkpoints.  When the budget is exhausted the checkpoint raises a
typed :class:`~repro.errors.BudgetExceeded`, so a runaway instance fails
loudly — and promptly — instead of hanging the whole synthesis pipeline.

The clock is injectable for deterministic tests, and :meth:`exhaust` lets the
chaos harness force deadline exhaustion at an exact point in the pipeline.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import BudgetExceeded, ReproError
from ..obs import event as obs_event
from ..obs import metrics as obs_metrics

__all__ = ["HEARTBEAT_NODES", "SolverBudget"]

#: Heartbeat cadence: one observability checkpoint per this many nodes.  The
#: heartbeat keeps the hot :meth:`SolverBudget.spend` path at a single
#: integer comparison while still surfacing long solver runs as trace events
#: and a live metrics counter.
HEARTBEAT_NODES = 4096


class SolverBudget:
    """A spendable budget of wall-clock seconds and solver nodes/iterations.

    ``deadline_s`` bounds elapsed time from the first checkpoint (or an
    explicit :meth:`start`); ``max_nodes`` bounds the total units passed to
    :meth:`spend`.  Either may be ``None`` (unbounded).  A budget with both
    ``None`` never raises and costs almost nothing to consult.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ReproError(f"deadline_s must be >= 0, got {deadline_s}")
        if max_nodes is not None and max_nodes < 0:
            raise ReproError(f"max_nodes must be >= 0, got {max_nodes}")
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self._clock = clock
        self._started_at: Optional[float] = None
        self._nodes = 0
        self._forced_reason: Optional[str] = None
        self._next_heartbeat = HEARTBEAT_NODES

    def start(self) -> "SolverBudget":
        """Anchor the deadline now (idempotent); returns ``self`` for chaining."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    @property
    def nodes_used(self) -> int:
        """Total units spent so far."""
        return self._nodes

    @property
    def elapsed_s(self) -> float:
        """Seconds since the budget started (0.0 before the first checkpoint)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def remaining_s(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` when unbounded."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed_s)

    @property
    def remaining_nodes(self) -> Optional[int]:
        """Nodes left before the cap, or ``None`` when unbounded."""
        if self.max_nodes is None:
            return None
        return max(0, self.max_nodes - self._nodes)

    @property
    def exhausted(self) -> bool:
        """True when any limit has been reached (never raises)."""
        if self._forced_reason is not None:
            return True
        if self.max_nodes is not None and self._nodes > self.max_nodes:
            return True
        if self.deadline_s is not None and self._started_at is not None:
            return self.elapsed_s > self.deadline_s
        return False

    def exhaust(self, reason: str = "forced exhaustion") -> None:
        """Force the budget into the exhausted state (used by chaos injection)."""
        self._forced_reason = reason

    def spend(self, nodes: int = 1, partial: object = None) -> None:
        """Charge ``nodes`` units and checkpoint; raises on exhaustion."""
        self._nodes += nodes
        if self._nodes >= self._next_heartbeat:
            self._heartbeat()
        self.checkpoint(partial)

    def _heartbeat(self) -> None:
        """Periodic observability checkpoint (every :data:`HEARTBEAT_NODES`)."""
        self._next_heartbeat = self._nodes + HEARTBEAT_NODES
        obs_metrics.counter("repro_budget_heartbeats_total").inc()
        obs_event(
            "budget.heartbeat",
            nodes=self._nodes,
            elapsed_s=round(self.elapsed_s, 6),
            deadline_s=self.deadline_s,
            max_nodes=self.max_nodes,
        )

    def checkpoint(self, partial: object = None) -> None:
        """Raise :class:`BudgetExceeded` if any limit has been reached.

        The deadline is anchored lazily at the first checkpoint, so a budget
        built ahead of time does not charge for setup work.  ``partial`` is
        attached to the raised exception for incumbent reuse.
        """
        self.start()
        if self._forced_reason is not None:
            self._expired("forced")
            raise BudgetExceeded(
                f"solver budget exhausted: {self._forced_reason}", partial=partial
            )
        if self.max_nodes is not None and self._nodes > self.max_nodes:
            self._expired("nodes")
            raise BudgetExceeded(
                f"solver exceeded its node budget "
                f"({self._nodes} > {self.max_nodes})",
                partial=partial,
            )
        if self.deadline_s is not None:
            elapsed = self.elapsed_s
            if elapsed > self.deadline_s:
                self._expired("deadline")
                raise BudgetExceeded(
                    f"solver exceeded its deadline "
                    f"({elapsed:.3f}s > {self.deadline_s:.3f}s)",
                    partial=partial,
                )

    def _expired(self, reason: str) -> None:
        obs_metrics.counter(
            "repro_budget_expirations_total", reason=reason
        ).inc()
        obs_event(
            "budget.expired", reason=reason, nodes=self._nodes,
            elapsed_s=round(self.elapsed_s, 6),
        )

    def __repr__(self) -> str:
        return (
            f"SolverBudget(deadline_s={self.deadline_s}, "
            f"max_nodes={self.max_nodes}, nodes_used={self._nodes})"
        )
