"""DECOR baseline — decorrelating transform (Ramprasad & Shanbhag, [10]).

The paper's related work discusses DECOR: instead of sharing computation,
*difference* adjacent coefficients.  Since neighbouring taps of a smooth
(low-pass-like) filter are strongly correlated, the differenced coefficients
``d_i = c_i - c_{i-1}`` are much smaller, so their multipliers need fewer
digits; an output integrator ``1/(1 - z^-1)`` restores the original transfer
function exactly:

    C(z) = D(z) / (1 - z^-1),   D(z) = (1 - z^-1) C(z)

Higher orders repeat the differencing (and stack integrators).  The paper
notes DECOR "is not effective when there is weak correlation between
coefficients" — band-pass/stop filters — which the DECOR-vs-MRP ablation
demonstrates empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..arch.simulate import simulate_tdf_filter
from ..errors import SimulationError, SynthesisError
from .simple import synthesize_simple
from ..numrep import Representation

__all__ = ["DecorArchitecture", "difference_coefficients", "synthesize_decor"]


def difference_coefficients(
    coefficients: Sequence[int], order: int = 1
) -> Tuple[int, ...]:
    """Apply ``order`` rounds of first-order differencing.

    Each round maps ``M`` taps to ``M + 1`` taps
    ``d_i = c_i - c_{i-1}`` (with ``c_{-1} = c_M = 0``); the telescoping sum
    guarantees exact reconstruction through one integrator per round.
    """
    if order < 0:
        raise SynthesisError(f"difference order must be >= 0, got {order}")
    current = [int(c) for c in coefficients]
    for _ in range(order):
        extended = [0] + current + [0]
        current = [extended[i + 1] - extended[i] for i in range(len(extended) - 1)]
    return tuple(current)


@dataclass(frozen=True)
class DecorArchitecture:
    """A filter realized as differenced multipliers + output integrators."""

    coefficients: Tuple[int, ...]
    differenced: Tuple[int, ...]
    order: int
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]

    @property
    def multiplier_adders(self) -> int:
        """Adders in the (differenced) multiplier block."""
        return self.netlist.adder_count

    @property
    def adder_count(self) -> int:
        """Total adders including one integrator per differencing round."""
        return self.netlist.adder_count + self.order

    def process(self, samples: Sequence[int]) -> List[int]:
        """Differenced TDF filter followed by ``order`` integrators."""
        stream = simulate_tdf_filter(self.netlist, self.tap_names, samples)
        for _ in range(self.order):
            acc = 0
            integrated = []
            for value in stream:
                acc += value
                integrated.append(acc)
            stream = integrated
        return stream

    def verify(self, samples: Sequence[int]) -> None:
        """Exact equivalence with convolution by the *original* taps."""
        got = self.process(samples)
        want = []
        for n in range(len(samples)):
            acc = 0
            for i, c in enumerate(self.coefficients):
                if n - i >= 0:
                    acc += c * samples[n - i]
            want.append(acc)
        if got != want:
            raise SimulationError(
                f"DECOR output diverges: {got[:5]} != {want[:5]}"
            )


def synthesize_decor(
    coefficients: Sequence[int],
    order: int = 1,
    representation: Representation = Representation.CSD,
) -> DecorArchitecture:
    """Build the DECOR structure: simple multipliers on differenced taps."""
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot synthesize an empty coefficient vector")
    differenced = difference_coefficients(coefficients, order)
    if not any(differenced):
        raise SynthesisError("differenced coefficients are identically zero")
    inner = synthesize_simple(differenced, representation)
    return DecorArchitecture(
        coefficients=coefficients,
        differenced=differenced,
        order=order,
        netlist=inner.netlist,
        tap_names=inner.tap_names,
    )
