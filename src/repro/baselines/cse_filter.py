"""CSE filter synthesis — the paper's strongest comparator (Hartley, CSD).

The whole coefficient vector is reduced to its unique odd mantissas, CSE is
run over their CSD strings, and taps are wired from the resulting constants.
This is what the paper's Figure 8 normalizes MRPF+CSE against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..arch.metrics import NetlistStats, analyze
from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..arch.simulate import verify_against_convolution
from ..core.sidc import normalize_taps
from ..cse.hartley import CseNetwork, build_cse_refs, eliminate
from ..errors import SynthesisError
from ..numrep import Representation

__all__ = ["CseFilterArchitecture", "synthesize_cse_filter"]


@dataclass(frozen=True)
class CseFilterArchitecture:
    """A filter whose multiplier block is one CSE network."""

    coefficients: Tuple[int, ...]
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]
    network: CseNetwork
    representation: Representation

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.netlist.adder_count

    @property
    def adder_depth(self) -> int:
        """Critical adder depth of the multiplier block."""
        return self.netlist.max_depth

    @property
    def num_subexpressions(self) -> int:
        """Number of extracted CSE subexpressions."""
        return len(self.network.subexpressions)

    def stats(self, input_bits: int = 16) -> NetlistStats:
        """Full :class:`NetlistStats` bundle for this architecture."""
        return analyze(self.netlist, self.tap_names, input_bits)

    def verify(self, samples: Sequence[int]) -> None:
        """Bit-exact check against direct convolution by the coefficients."""
        verify_against_convolution(
            self.netlist, self.tap_names, self.coefficients, samples
        )


def synthesize_cse_filter(
    coefficients: Sequence[int],
    representation: Representation = Representation.CSD,
) -> CseFilterArchitecture:
    """Run CSE over the unique odd mantissas and wire all taps from them."""
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot synthesize an empty coefficient vector")
    vertices, bindings = normalize_taps(coefficients)
    netlist = ShiftAddNetlist()
    vertex_refs: Dict[int, Ref] = {}
    if vertices:
        network = eliminate(vertices, representation)
        for vertex, ref in zip(vertices, build_cse_refs(netlist, network)):
            vertex_refs[vertex] = ref
    else:
        network = CseNetwork(
            constants=(), subexpressions={}, symbol_values={0: 1},
            constant_terms=(),
        )
    tap_names: List[str] = []
    for binding in bindings:
        name = f"tap{binding.index}"
        tap_names.append(name)
        if binding.is_zero:
            netlist.mark_output(name, None)
        elif binding.is_free:
            netlist.mark_output(
                name, Ref(node=0, shift=binding.shift, sign=binding.sign)
            )
        else:
            base = vertex_refs[binding.vertex]
            netlist.mark_output(
                name,
                Ref(
                    node=base.node,
                    shift=base.shift + binding.shift,
                    sign=base.sign * binding.sign,
                ),
            )
    netlist.validate()
    return CseFilterArchitecture(
        coefficients=coefficients,
        netlist=netlist,
        tap_names=tuple(tap_names),
        network=network,
        representation=representation,
    )
