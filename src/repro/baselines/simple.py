"""The paper's "simple implementation": per-tap shift-add multipliers, no sharing.

Every nonzero tap gets its own digit chain — the transposed-direct-form
baseline every figure normalizes against.  Its adder count is exactly
``sum(nonzero_digits(c_i) - 1)`` over the taps, in whichever representation
(SPT/CSD or SM) is selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.metrics import NetlistStats, analyze
from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..arch.simulate import verify_against_convolution
from ..errors import SynthesisError
from ..numrep import Representation, adder_cost, encode, odd_normalize

__all__ = ["SimpleArchitecture", "simple_adder_count", "synthesize_simple"]


@dataclass(frozen=True)
class SimpleArchitecture:
    """Per-tap shift-add filter (no computation sharing)."""

    coefficients: Tuple[int, ...]
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]
    representation: Representation

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.netlist.adder_count

    @property
    def adder_depth(self) -> int:
        """Critical adder depth of the multiplier block."""
        return self.netlist.max_depth

    def stats(self, input_bits: int = 16) -> NetlistStats:
        """Full :class:`NetlistStats` bundle for this architecture."""
        return analyze(self.netlist, self.tap_names, input_bits)

    def verify(self, samples: Sequence[int]) -> None:
        """Bit-exact check against direct convolution by the coefficients."""
        verify_against_convolution(
            self.netlist, self.tap_names, self.coefficients, samples
        )


def simple_adder_count(
    coefficients: Sequence[int],
    representation: Representation = Representation.CSD,
) -> int:
    """Adders of the simple implementation: ``sum(digits(c) - 1)`` per tap."""
    return sum(adder_cost(int(c), representation) for c in coefficients)


def synthesize_simple(
    coefficients: Sequence[int],
    representation: Representation = Representation.CSD,
) -> SimpleArchitecture:
    """Build the unshared per-tap netlist (the figures' normalization basis)."""
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot synthesize an empty coefficient vector")
    netlist = ShiftAddNetlist()
    tap_names: List[str] = []
    for index, coefficient in enumerate(coefficients):
        name = f"tap{index}"
        tap_names.append(name)
        netlist.mark_output(name, _tap_chain(netlist, coefficient, representation))
    netlist.validate()
    return SimpleArchitecture(
        coefficients=coefficients,
        netlist=netlist,
        tap_names=tuple(tap_names),
        representation=representation,
    )


def _tap_chain(
    netlist: ShiftAddNetlist, coefficient: int, representation: Representation
) -> Optional[Ref]:
    """A private (unshared) digit chain for one tap; wiring-only when possible."""
    if coefficient == 0:
        return None
    sign = 1 if coefficient > 0 else -1
    odd, shift = odd_normalize(abs(coefficient))
    if odd == 1:
        return Ref(node=0, shift=shift, sign=sign)
    terms = encode(odd, representation).terms
    acc = Ref(node=0, shift=terms[0][0], sign=terms[0][1])
    for position, digit in terms[1:]:
        acc = netlist.add(acc, Ref(node=0, shift=position, sign=digit))
    if netlist.ref_value(acc) != odd:
        raise SynthesisError(f"tap chain built {netlist.ref_value(acc)}, wanted {odd}")
    return Ref(node=acc.node, shift=acc.shift + shift, sign=acc.sign * sign)
