"""Bull-Horrocks-Modified (BHM) multiple constant multiplication baseline.

A classic adder-graph MCM heuristic (Bull & Horrocks 1991; Dempster &
Macleod's modification) contemporaneous with the paper's comparators: realized
*fundamentals* accumulate in a set ``S`` (seeded with 1), and each target
constant is built either in a single adder from two existing fundamentals or
by greedy successive approximation against ``S``, with every intermediate
partial sum fed back into ``S`` for later reuse.

Including BHM makes the comparison landscape honest: CSE (pattern-based) and
MRP (difference-based) are two philosophies; BHM is the third classic one
(graph-based MCM), and `benchmarks/bench_ablation_mcm.py` races all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.metrics import NetlistStats, analyze
from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..arch.simulate import verify_against_convolution
from ..core.sidc import normalize_taps
from ..errors import SynthesisError
from ..numrep import adder_cost

__all__ = ["BhmArchitecture", "synthesize_bhm"]


@dataclass(frozen=True)
class BhmArchitecture:
    """A filter whose multiplier block was built by the BHM heuristic."""

    coefficients: Tuple[int, ...]
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]
    fundamentals: Tuple[int, ...]

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.netlist.adder_count

    @property
    def adder_depth(self) -> int:
        """Critical adder depth of the multiplier block."""
        return self.netlist.max_depth

    def stats(self, input_bits: int = 16) -> NetlistStats:
        """Full :class:`NetlistStats` bundle for this architecture."""
        return analyze(self.netlist, self.tap_names, input_bits)

    def verify(self, samples: Sequence[int]) -> None:
        """Bit-exact check against direct convolution by the coefficients."""
        verify_against_convolution(
            self.netlist, self.tap_names, self.coefficients, samples
        )


def synthesize_bhm(
    coefficients: Sequence[int],
    max_shift: Optional[int] = None,
) -> BhmArchitecture:
    """Build all coefficient multiplications with the BHM heuristic.

    ``max_shift`` bounds the shifts tried when combining fundamentals; by
    default one bit past the widest coefficient.
    """
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot synthesize an empty coefficient vector")
    vertices, bindings = normalize_taps(coefficients)
    if max_shift is None:
        widest = max((abs(c).bit_length() for c in coefficients), default=1)
        max_shift = widest + 1

    netlist = ShiftAddNetlist()
    realized: Dict[int, Ref] = {1: netlist.input}

    for target in sorted(vertices):  # ascending: small fundamentals first
        _realize(netlist, realized, target, max_shift)

    tap_names: List[str] = []
    for binding in bindings:
        name = f"tap{binding.index}"
        tap_names.append(name)
        if binding.is_zero:
            netlist.mark_output(name, None)
        elif binding.is_free:
            netlist.mark_output(
                name, Ref(node=0, shift=binding.shift, sign=binding.sign)
            )
        else:
            base = realized[binding.vertex]
            netlist.mark_output(
                name,
                Ref(node=base.node, shift=base.shift + binding.shift,
                    sign=base.sign * binding.sign),
            )
    netlist.validate()
    return BhmArchitecture(
        coefficients=coefficients,
        netlist=netlist,
        tap_names=tuple(tap_names),
        fundamentals=tuple(sorted(realized)),
    )


def _realize(
    netlist: ShiftAddNetlist,
    realized: Dict[int, Ref],
    target: int,
    max_shift: int,
) -> Ref:
    """Ensure ``target`` (odd, > 1) is computed; register intermediates."""
    if target in realized:
        return realized[target]

    # Phase 1: one adder from two existing fundamentals (graph extension).
    pair = _single_adder_combination(realized, target, max_shift)
    if pair is not None:
        a, b = pair
        ref = netlist.add(a, b, label=f"bhm_{target}")
        _register(netlist, realized, ref)
        return realized[target]

    # Phase 2: greedy successive approximation against the realized set,
    # planned as a dry run first so the plain CSD chain can serve as a cost
    # cap (the standard BHM fallback — the approximation occasionally loses
    # to the canonical digit chain).
    terms: List[Tuple[int, int, int]] = []
    remainder = target
    while remainder != 0:
        u, k, sign = _closest_term(realized, remainder, max_shift)
        terms.append((u, k, sign))
        remainder -= sign * (u << k)
    approx_adders = len(terms) - 1
    if adder_cost(target) <= approx_adders:
        ref = netlist.ensure_constant(target, label=f"bhm_{target}")
        _register(netlist, realized, ref)
        return realized[target]

    acc: Optional[Ref] = None
    for u, k, sign in terms:
        base = realized[u]
        term_ref = Ref(node=base.node, shift=base.shift + k,
                       sign=base.sign * sign)
        if acc is None:
            acc = term_ref
        else:
            acc = netlist.add(acc, term_ref, label=f"bhm_{target}")
            _register(netlist, realized, acc)
    if acc is None or netlist.ref_value(acc) != target:  # pragma: no cover
        raise SynthesisError(f"BHM failed to realize {target}")
    _register(netlist, realized, acc)
    return realized[target]


def _register(
    netlist: ShiftAddNetlist, realized: Dict[int, Ref], ref: Ref
) -> None:
    """Register a node in the realized set when it carries an odd value.

    ``realized[u]`` must reference a wire whose value is *exactly* ``u`` (the
    combination search multiplies by explicit shifts), so even-valued partial
    sums are not registered — their odd part is not addressable without a
    right shift, which hardware wiring cannot provide.
    """
    node_value = netlist.value_of(ref.node)
    magnitude = abs(node_value)
    if magnitude % 2 == 1 and magnitude not in realized:
        realized[magnitude] = Ref(
            node=ref.node, shift=0, sign=1 if node_value > 0 else -1
        )


def _single_adder_combination(
    realized: Dict[int, Ref], target: int, max_shift: int
) -> Optional[Tuple[Ref, Ref]]:
    """Find refs a, b over realized fundamentals with value(a)+value(b)==target."""
    values = sorted(realized)
    for u in values:
        for i in range(max_shift + 1):
            left = u << i
            if left > (abs(target) << 1):
                break
            for v in values:
                for j in range(max_shift + 1):
                    right = v << j
                    if right > (abs(target) << 1):
                        break
                    for s1 in (1, -1):
                        for s2 in (1, -1):
                            if s1 * left + s2 * right == target:
                                ru = realized[u]
                                rv = realized[v]
                                return (
                                    Ref(node=ru.node, shift=ru.shift + i,
                                        sign=ru.sign * s1),
                                    Ref(node=rv.node, shift=rv.shift + j,
                                        sign=rv.sign * s2),
                                )
    return None


def _closest_term(
    realized: Dict[int, Ref], remainder: int, max_shift: int
) -> Tuple[int, int, int]:
    """``(fundamental, shift, sign)`` minimizing the residual error.

    Always makes progress: the fundamental 1 at the remainder's MSB position
    leaves a residual strictly below half the remainder's magnitude.
    """
    best: Optional[Tuple[int, int, int, int, int]] = None  # (err, |v|, u, k, sign)
    for u in sorted(realized):
        for k in range(max_shift + 1):
            magnitude = u << k
            if magnitude > (abs(remainder) << 1):
                break
            for sign in (1, -1):
                error = abs(remainder - sign * magnitude)
                candidate = (error, magnitude, u, k, sign)
                if error < abs(remainder) and (best is None or candidate < best):
                    best = candidate
    if best is None:  # pragma: no cover - u=1 always qualifies
        raise SynthesisError(f"no BHM term reduces remainder {remainder}")
    _, _, u, k, sign = best
    return u, k, sign
