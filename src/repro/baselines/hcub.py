"""Hcub-style MCM baseline (Voronenko & Püschel, successor of BHM/RAG-n).

The strongest classical MCM heuristic family works on *fundamentals*: keep a
ready set ``R`` (realized odd values, seeded with 1) and a target set ``T``;
while targets remain, first harvest every target reachable in one adder from
``R`` (the RAG-n "optimal part"), then — when stuck — insert the intermediate
fundamental that most reduces an estimated distance to the remaining targets
(the heuristic part, Hcub's cumulative-benefit idea).

Distance estimation here is the standard practical one:

* ``dist = 0``  if the target is already in the closure of ``R``;
* ``dist = 1``  if a single adder over shifted ready values reaches it;
* otherwise a CSD-based upper bound (digits of the cheapest residual form).

This is a faithful, laptop-scale rendition of the algorithm's structure, not
a bit-identical port of the released C++.  It gives the reproduction a
modern-MCM reference point beyond the paper's own 2003-era comparators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.metrics import NetlistStats, analyze
from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..arch.simulate import verify_against_convolution
from ..core.sidc import normalize_taps
from ..errors import SynthesisError
from ..numrep import csd_nonzero_count, oddpart

__all__ = ["HcubArchitecture", "synthesize_hcub"]


@dataclass(frozen=True)
class HcubArchitecture:
    """A filter whose multiplier block was built fundamental-by-fundamental."""

    coefficients: Tuple[int, ...]
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]
    fundamentals: Tuple[int, ...]

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.netlist.adder_count

    @property
    def adder_depth(self) -> int:
        """Critical adder depth of the multiplier block."""
        return self.netlist.max_depth

    def stats(self, input_bits: int = 16) -> NetlistStats:
        """Full :class:`NetlistStats` bundle for this architecture."""
        return analyze(self.netlist, self.tap_names, input_bits)

    def verify(self, samples: Sequence[int]) -> None:
        """Bit-exact check against direct convolution by the coefficients."""
        verify_against_convolution(
            self.netlist, self.tap_names, self.coefficients, samples
        )


def synthesize_hcub(
    coefficients: Sequence[int],
    max_shift: Optional[int] = None,
    max_candidate_bits: Optional[int] = None,
) -> HcubArchitecture:
    """Build all coefficient multiplications with the Hcub-style heuristic."""
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot synthesize an empty coefficient vector")
    vertices, bindings = normalize_taps(coefficients)
    widest = max((abs(c).bit_length() for c in coefficients), default=1)
    if max_shift is None:
        max_shift = widest + 1
    if max_candidate_bits is None:
        max_candidate_bits = widest + 2

    netlist = ShiftAddNetlist()
    ready: Dict[int, Ref] = {1: netlist.input}
    targets: Set[int] = set(vertices)

    while targets:
        # Optimal part: realize every target one adder away from R.
        progressed = True
        while progressed and targets:
            progressed = False
            for target in sorted(targets):
                combo = _adder_from_ready(ready, target, max_shift)
                if combo is not None:
                    _materialize(netlist, ready, target, combo)
                    targets.discard(target)
                    progressed = True
        if not targets:
            break
        # Heuristic part: insert the intermediate with the best cumulative
        # distance improvement over all remaining targets.
        intermediate = _best_intermediate(
            ready, targets, max_shift, max_candidate_bits
        )
        if intermediate is None:
            # No helpful intermediate: fall back to the cheapest residual
            # CSD chain for the hardest target (guarantees progress).
            target = min(targets, key=lambda t: (csd_nonzero_count(t), t))
            ref = netlist.ensure_constant(target, label=f"hcub_{target}")
            ready[target] = Ref(node=ref.node, shift=0, sign=1)
            targets.discard(target)
        else:
            combo = _adder_from_ready(ready, intermediate, max_shift)
            assert combo is not None  # by construction of the candidates
            _materialize(netlist, ready, intermediate, combo)
            targets.discard(intermediate)

    tap_names: List[str] = []
    for binding in bindings:
        name = f"tap{binding.index}"
        tap_names.append(name)
        if binding.is_zero:
            netlist.mark_output(name, None)
        elif binding.is_free:
            netlist.mark_output(
                name, Ref(node=0, shift=binding.shift, sign=binding.sign)
            )
        else:
            base = ready[binding.vertex]
            netlist.mark_output(
                name,
                Ref(node=base.node, shift=base.shift + binding.shift,
                    sign=base.sign * binding.sign),
            )
    netlist.validate()
    return HcubArchitecture(
        coefficients=coefficients,
        netlist=netlist,
        tap_names=tuple(tap_names),
        fundamentals=tuple(sorted(ready)),
    )


def _materialize(
    netlist: ShiftAddNetlist,
    ready: Dict[int, Ref],
    value: int,
    combo: Tuple[Ref, Ref],
) -> None:
    ref = netlist.add(combo[0], combo[1], label=f"hcub_{value}")
    got = netlist.ref_value(ref)
    if got != value:
        raise SynthesisError(f"hcub adder built {got}, wanted {value}")
    ready[value] = Ref(node=ref.node, shift=0, sign=1)


def _adder_from_ready(
    ready: Dict[int, Ref], target: int, max_shift: int
) -> Optional[Tuple[Ref, Ref]]:
    """One-adder realization ``target = ±(u<<i) ± (v<<j)`` over ready values."""
    values = sorted(ready)
    bound = abs(target) << 1
    for u in values:
        for i in range(max_shift + 1):
            left = u << i
            if left > bound:
                break
            for v in values:
                for j in range(max_shift + 1):
                    right = v << j
                    if right > bound:
                        break
                    for s1 in (1, -1):
                        for s2 in (1, -1):
                            if s1 * left + s2 * right == target:
                                ru, rv = ready[u], ready[v]
                                return (
                                    Ref(node=ru.node, shift=ru.shift + i,
                                        sign=ru.sign * s1),
                                    Ref(node=rv.node, shift=rv.shift + j,
                                        sign=rv.sign * s2),
                                )
    return None


def _distance(ready_values: Set[int], target: int, max_shift: int) -> int:
    """Estimated adders still needed for ``target`` given ready values."""
    if target in ready_values:
        return 0
    if _reachable_one_adder(ready_values, target, max_shift):
        return 1
    # Upper bound: cheapest CSD residual against any single ready value.
    best = csd_nonzero_count(target)  # building from scratch
    for u in ready_values:
        shift = 0
        while (u << shift) <= (abs(target) << 1) and shift <= max_shift:
            for sign in (1, -1):
                residual = target - sign * (u << shift)
                if residual != 0:
                    best = min(best, 1 + csd_nonzero_count(oddpart(abs(residual))))
            shift += 1
    return best


def _reachable_one_adder(
    ready_values: Set[int], target: int, max_shift: int
) -> bool:
    bound = abs(target) << 1
    for u in ready_values:
        for i in range(max_shift + 1):
            left = u << i
            if left > bound:
                break
            for v in ready_values:
                for j in range(max_shift + 1):
                    right = v << j
                    if right > bound:
                        break
                    if (left + right == target or left - right == target
                            or right - left == target or -left - right == target):
                        return True
    return False


def _best_intermediate(
    ready: Dict[int, Ref],
    targets: Set[int],
    max_shift: int,
    max_candidate_bits: int,
) -> Optional[int]:
    """The one-adder-reachable value with the best cumulative benefit.

    Candidates are targets themselves plus sums/differences involving targets
    and ready values (the practically useful slice of Hcub's successor set).
    Benefit of candidate ``c`` = total distance reduction over all targets
    when ``c`` joins the ready set; ties prefer smaller candidates.
    """
    ready_values = set(ready)
    limit = 1 << max_candidate_bits
    candidates: Set[int] = set()
    for t in targets:
        # Additive successors: odd parts of t ± (ready or target) shifts.
        for u in ready_values | targets:
            for shift in range(max_shift + 1):
                for sign in (1, -1):
                    for value in (t + sign * (u << shift), t - sign * (u << shift)):
                        odd = oddpart(abs(value))
                        if 1 < odd < limit and odd not in ready_values:
                            candidates.add(odd)
        # Multiplicative successors (vertex reduction): odd divisors of t,
        # e.g. 45 = 5 * 9 — build 5 or 9 first, finish in one more adder.
        for divisor in _odd_divisors(t):
            if 1 < divisor < limit and divisor not in ready_values:
                candidates.add(divisor)
    # Keep only candidates reachable in ONE adder from the current ready set.
    reachable = [
        c for c in candidates if _reachable_one_adder(ready_values, c, max_shift)
    ]
    if not reachable:
        return None

    base_distance = {
        t: _distance(ready_values, t, max_shift) for t in targets
    }
    best: Optional[int] = None
    best_rank: Tuple[int, int] = (0, 0)
    for candidate in sorted(reachable):
        extended = ready_values | {candidate}
        benefit = sum(
            base_distance[t] - _distance(extended, t, max_shift)
            for t in targets
        )
        rank = (benefit, -candidate)
        if benefit > 0 and (best is None or rank > best_rank):
            best, best_rank = candidate, rank
    return best


def _odd_divisors(value: int) -> List[int]:
    """Proper odd divisors of ``|value|`` greater than 1."""
    value = abs(value)
    divisors: Set[int] = set()
    d = 3
    while d * d <= value:
        if value % d == 0:
            divisors.add(d)
            other = value // d
            if other % 2 == 1 and other != value:
                divisors.add(other)
        d += 2
    divisors.discard(value)
    return sorted(divisors)
