"""Pure differential-coefficient MST baseline (Muhammad & Roy, TCAD 2002).

MRP's direct ancestor restricts the SID coefficients to ``L = 0`` — colors
are plain differences/sums of coefficient pairs, without the shift-inclusive
expansion of the design space.  Running the same greedy-cover + forest
machinery with ``max_shift=0`` reproduces that method, which makes the
comparison against full MRP a one-variable ablation (see
``benchmarks/bench_ablation_shift_range.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.mrp import MrpOptions, MrpPlan, optimize
from ..core.transform import MrpfArchitecture, lower_plan

__all__ = ["optimize_mst_diff", "synthesize_mst_diff"]


def optimize_mst_diff(
    coefficients: Sequence[int],
    wordlength: int,
    options: Optional[MrpOptions] = None,
) -> MrpPlan:
    """MRP stage A with the shift range pinned to ``L = 0``."""
    base = options or MrpOptions()
    pinned = MrpOptions(
        beta=base.beta,
        max_shift=0,
        representation=base.representation,
        depth_limit=base.depth_limit,
    )
    return optimize(coefficients, wordlength, pinned)


def synthesize_mst_diff(
    coefficients: Sequence[int],
    wordlength: int,
    options: Optional[MrpOptions] = None,
    verify: bool = True,
) -> MrpfArchitecture:
    """Full lowering of the L=0 differential-coefficient architecture."""
    plan = optimize_mst_diff(coefficients, wordlength, options)
    architecture = lower_plan(plan)
    if verify:
        architecture.verify()
    return architecture
