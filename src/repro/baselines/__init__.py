"""Baseline filter syntheses the reproduction compares against.

* ``simple`` — per-tap shift-add chains (the paper's normalization basis)
* ``cse_filter`` — Hartley CSE (the paper's strongest comparator)
* ``mst_diff`` — L=0 differential-coefficient MST (MRP's ancestor, [5])
* ``bhm`` / ``hcub`` — classic and modern adder-graph MCM (1991 / 2007)
* ``decor`` — decorrelating transform (dynamic-range reduction, [10])
"""

from .bhm import BhmArchitecture, synthesize_bhm
from .cse_filter import CseFilterArchitecture, synthesize_cse_filter
from .decor import (
    DecorArchitecture,
    difference_coefficients,
    synthesize_decor,
)
from .hcub import HcubArchitecture, synthesize_hcub
from .mst_diff import optimize_mst_diff, synthesize_mst_diff
from .simple import SimpleArchitecture, simple_adder_count, synthesize_simple

__all__ = [
    "BhmArchitecture",
    "CseFilterArchitecture",
    "DecorArchitecture",
    "HcubArchitecture",
    "SimpleArchitecture",
    "difference_coefficients",
    "optimize_mst_diff",
    "simple_adder_count",
    "synthesize_bhm",
    "synthesize_cse_filter",
    "synthesize_decor",
    "synthesize_hcub",
    "synthesize_mst_diff",
    "synthesize_simple",
]
