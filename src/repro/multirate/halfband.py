"""Half-band FIR design — the structurally friendliest filter for MRP.

A half-band low-pass has cutoff at fs/4 with symmetric transition bands; its
impulse response has *every other tap exactly zero* (except the center).
Zero taps cost nothing in any multiplierless scheme, and in a 2-fold
polyphase decimator one whole branch degenerates to a single center tap —
the classic efficient decimate-by-2 building block that channelizer chains
cascade.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..errors import FilterDesignError

__all__ = ["design_halfband", "is_halfband"]


def design_halfband(numtaps: int, transition: float = 0.1) -> np.ndarray:
    """Design a half-band low-pass via the Remez half-band trick.

    ``numtaps`` must satisfy ``numtaps % 4 == 3`` (order 4k+2: the canonical
    half-band lengths 7, 11, 15, ...); ``transition`` is the width of each
    transition band around fs/4, normalized to Nyquist (0 < transition < 0.5).

    The trick: design the nonzero "half filter" ``g`` of length
    ``(numtaps+1)/2`` as a full-band filter, then interleave zeros and set
    the center tap — the result is exactly half-band by construction.
    """
    if numtaps % 4 != 3:
        raise FilterDesignError(
            f"half-band length must be 4k+3 (7, 11, 15, ...), got {numtaps}"
        )
    if not 0.0 < transition < 0.5:
        raise FilterDesignError(f"transition {transition} out of (0, 0.5)")
    half_length = (numtaps + 1) // 2
    # Design g(n) with passband [0, 0.5 - 2*transition] on the half-rate grid.
    edge = 0.5 - transition
    g = signal.remez(half_length, [0.0, 2 * edge, 1.0 - 1e-6, 1.0],
                     [1.0, 0.0], fs=2.0)
    taps = np.zeros(numtaps)
    taps[::2] = g / 2.0
    taps[numtaps // 2] = 0.5
    return taps


def is_halfband(taps: np.ndarray, rel_tol: float = 1e-9) -> bool:
    """True if every other tap (except the center) is (numerically) zero."""
    taps = np.asarray(taps, dtype=float)
    if taps.size % 2 == 0:
        return False
    center = taps.size // 2
    scale = max(1.0, float(np.max(np.abs(taps))))
    # Half-band zeros sit at *even* distances from the center tap.
    for distance in range(2, center + 1, 2):
        if abs(taps[center - distance]) > rel_tol * scale:
            return False
        if abs(taps[center + distance]) > rel_tol * scale:
            return False
    return True
