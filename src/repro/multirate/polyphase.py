"""Polyphase decimators and interpolators built on MRP vector scalers.

The paper motivates MRPF with high-speed communication transceivers, whose
channelizers are multirate: an M-fold decimator or interpolator implemented
in polyphase form.  The two structures exercise MRP differently:

* **Interpolator** — every polyphase branch multiplies the *same* input
  sample, so all branches form one big vector scaling operation and MRP
  optimizes them jointly (maximum sharing).
* **Decimator** — each branch sees a different input phase, so sharing is
  only possible within a branch; MRP runs per branch.

Both synthesized structures are verified exactly against the reference
"filter then resample" golden model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.mrp import MrpOptions
from ..core.vector import VectorScaler, synthesize_vector_scaler
from ..errors import SimulationError, SynthesisError
from ..filters.structures import direct_form_output

__all__ = [
    "PolyphaseDecimator",
    "PolyphaseInterpolator",
    "decimate_reference",
    "interpolate_reference",
    "polyphase_decompose",
    "synthesize_polyphase_decimator",
    "synthesize_polyphase_interpolator",
]


def polyphase_decompose(taps: Sequence[int], factor: int) -> List[List[int]]:
    """Split taps into ``factor`` polyphase components.

    Component ``p`` holds ``taps[p], taps[p + M], taps[p + 2M], ...`` — the
    standard type-1 decomposition.
    """
    if factor < 1:
        raise SynthesisError(f"polyphase factor must be >= 1, got {factor}")
    taps = [int(t) for t in taps]
    return [taps[p::factor] for p in range(factor)]


def decimate_reference(taps: Sequence[int], factor: int,
                       samples: Sequence[int]) -> List[int]:
    """Golden model: full-rate convolution, keep every M-th output."""
    full = direct_form_output(list(taps), list(samples))
    return full[::factor]


def interpolate_reference(taps: Sequence[int], factor: int,
                          samples: Sequence[int]) -> List[int]:
    """Golden model: zero-stuff by M, then full-rate convolution."""
    stuffed: List[int] = []
    for x in samples:
        stuffed.append(int(x))
        stuffed.extend([0] * (factor - 1))
    return direct_form_output(list(taps), stuffed)


@dataclass(frozen=True)
class PolyphaseDecimator:
    """M branches of MRP-optimized sub-filters, one per input phase."""

    taps: Tuple[int, ...]
    factor: int
    branches: Tuple[VectorScaler, ...]

    @property
    def adder_count(self) -> int:
        """Multiplier-block adders across all branches."""
        return sum(branch.adder_count for branch in self.branches)

    def process(self, samples: Sequence[int]) -> List[int]:
        """Cycle-accurate polyphase run: one output per M input samples.

        Output ``y(m) = sum_p branch_p(x at phase p)`` where phase ``p`` of
        output ``m`` consumes samples ``x[mM - p - kM]``.
        """
        samples = [int(x) for x in samples]
        components = polyphase_decompose(self.taps, self.factor)
        outputs: List[int] = []
        num_outputs = (len(samples) + self.factor - 1) // self.factor
        for m in range(num_outputs):
            acc = 0
            for p in range(self.factor):
                sub = components[p]
                for k, coefficient in enumerate(sub):
                    index = m * self.factor - p - k * self.factor
                    if 0 <= index < len(samples):
                        acc += coefficient * samples[index]
            outputs.append(acc)
        return outputs

    def verify(self, samples: Sequence[int]) -> None:
        """Structure == golden model, and every branch's products are exact."""
        got = self.process(samples)
        want = decimate_reference(self.taps, self.factor, samples)
        if got != want:
            raise SimulationError(
                f"polyphase decimator mismatch: {got[:5]} != {want[:5]}"
            )
        for branch in self.branches:
            branch.verify()


@dataclass(frozen=True)
class PolyphaseInterpolator:
    """One *joint* MRP vector scaler feeding M interleaved output phases."""

    taps: Tuple[int, ...]
    factor: int
    scaler: VectorScaler

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.scaler.adder_count

    def process(self, samples: Sequence[int]) -> List[int]:
        """One low-rate input -> M high-rate outputs per cycle.

        All tap products of the current sample come from the shared scaler;
        phase ``p`` of the output stream accumulates products of component
        ``p`` across input history.
        """
        samples = [int(x) for x in samples]
        components = polyphase_decompose(self.taps, self.factor)
        outputs: List[int] = []
        for n in range(len(samples)):
            for p in range(self.factor):
                acc = 0
                for k, coefficient in enumerate(components[p]):
                    if n - k >= 0:
                        acc += coefficient * samples[n - k]
                outputs.append(acc)
        return outputs

    def verify(self, samples: Sequence[int]) -> None:
        """Bit-exact check against direct convolution by the coefficients."""
        got = self.process(samples)
        want = interpolate_reference(self.taps, self.factor, samples)
        if got != want:
            raise SimulationError(
                f"polyphase interpolator mismatch: {got[:6]} != {want[:6]}"
            )
        self.scaler.verify()


def synthesize_polyphase_decimator(
    taps: Sequence[int],
    factor: int,
    wordlength: int,
    options: MrpOptions = None,
) -> PolyphaseDecimator:
    """Per-branch MRP synthesis of an M-fold polyphase decimator."""
    taps = tuple(int(t) for t in taps)
    branches = []
    for component in polyphase_decompose(taps, factor):
        if component and any(component):
            branches.append(
                synthesize_vector_scaler(component, wordlength=wordlength,
                                         options=options)
            )
        else:
            # An all-zero component (common in half-band filters) needs no
            # arithmetic at all — keep a placeholder so branch indexing holds.
            branches.append(_zero_branch(len(component)))
    return PolyphaseDecimator(taps=taps, factor=factor,
                              branches=tuple(branches))


def synthesize_polyphase_interpolator(
    taps: Sequence[int],
    factor: int,
    wordlength: int,
    options: MrpOptions = None,
) -> PolyphaseInterpolator:
    """Joint MRP synthesis of an M-fold polyphase interpolator."""
    taps = tuple(int(t) for t in taps)
    if not any(taps):
        raise SynthesisError("interpolator taps are identically zero")
    scaler = synthesize_vector_scaler(taps, wordlength=wordlength,
                                      options=options)
    return PolyphaseInterpolator(taps=taps, factor=factor, scaler=scaler)


def _zero_branch(length: int) -> VectorScaler:
    """A trivial scaler for an all-zero polyphase component."""
    from ..core.transform import lower_plan
    from ..core.mrp import trivial_plan

    plan = trivial_plan([0] * max(1, length))
    architecture = lower_plan(plan)
    return VectorScaler(constants=tuple([0] * max(1, length)),
                        architecture=architecture)
