"""Multirate structures: polyphase decimation/interpolation, half-band design."""

from .halfband import design_halfband, is_halfband
from .polyphase import (
    PolyphaseDecimator,
    PolyphaseInterpolator,
    decimate_reference,
    interpolate_reference,
    polyphase_decompose,
    synthesize_polyphase_decimator,
    synthesize_polyphase_interpolator,
)

__all__ = [
    "PolyphaseDecimator",
    "PolyphaseInterpolator",
    "decimate_reference",
    "design_halfband",
    "interpolate_reference",
    "is_halfband",
    "polyphase_decompose",
    "synthesize_polyphase_decimator",
    "synthesize_polyphase_interpolator",
]
