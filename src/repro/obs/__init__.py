"""Dependency-free observability: tracing, metrics, and trace reporting.

Three pieces, all optional at runtime and free when idle:

* :mod:`repro.obs.trace` — hierarchical phase spans with a JSONL exporter.
  Disabled by default: :func:`span` returns a shared no-op context until
  :func:`configure` installs a tracer, so instrumented code pays one
  ``None`` check on the disabled path and behavior never changes.
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms with
  Prometheus text exposition and snapshot *merging*, so parallel sweeps
  aggregate worker-process metrics into the parent's report.
* :mod:`repro.obs.report` — trace validation and the per-phase time
  breakdown behind the ``stats`` CLI subcommand.

Cross-process protocol: the parent passes :func:`worker_args` to each pool
initializer; workers call :func:`worker_configure`, which discards the
inherited (forked) parent sink, resets the inherited registry, and starts
spilling per-worker trace lines and metric snapshots into a shared spill
directory.  After the pool drains, the parent calls :func:`drain_spill` to
fold worker files back into its own trace and registry.  Spill files are
rewritten atomically at every task boundary, so a SIGKILL'd worker loses at
most its in-flight task's telemetry — mirroring the sweep journal's
durability story.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from . import metrics
from .metrics import DEFAULT_REGISTRY, counter, gauge, histogram
from .report import (
    format_breakdown,
    load_trace,
    load_traces,
    phase_breakdown,
    validate_trace,
)
from .trace import (
    NULL_SPAN_CONTEXT,
    TRACE_FORMAT_VERSION,
    JsonlSink,
    TraceContext,
    Tracer,
    format_traceparent,
    make_trace_id,
    parse_traceparent,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "JsonlSink",
    "TraceContext",
    "Tracer",
    "configure",
    "counter",
    "current_context",
    "current_traceparent",
    "drain_spill",
    "enable_profile",
    "enabled",
    "event",
    "finalize",
    "flush",
    "format_breakdown",
    "format_traceparent",
    "gauge",
    "histogram",
    "load_trace",
    "load_traces",
    "make_trace_id",
    "metrics",
    "parse_traceparent",
    "phase_breakdown",
    "predeclare_metrics",
    "reset",
    "setup_logging",
    "span",
    "trace_context",
    "tracing_enabled",
    "validate_trace",
    "worker_args",
    "worker_configure",
    "worker_checkpoint",
]

_TRACER: Optional[Tracer] = None
_METRICS_PATH: Optional[Path] = None
_SPILL_DIR: Optional[Path] = None
_WORKER_METRICS_PATH: Optional[Path] = None
_PROFILER = None  # Optional[repro.obs.profile.SpanProfiler]

#: Counter series pre-registered at configure() time so the exposition file
#: always carries the full vocabulary (a scraper can rely on a series
#: existing at 0 rather than appearing only once the first increment lands).
_PREDECLARED_COUNTERS = (
    ("repro_tasks_total", {"status": "ok"}),
    ("repro_tasks_total", {"status": "failed"}),
    ("repro_tasks_total", {"status": "quarantined"}),
    ("repro_task_retries_total", {}),
    ("repro_pool_rebuilds_total", {}),
    ("repro_tasks_resumed_total", {}),
    ("repro_tasks_precached_total", {}),
    ("repro_cache_hits_total", {"layer": "memory"}),
    ("repro_cache_hits_total", {"layer": "disk"}),
    ("repro_cache_misses_total", {"layer": "memory"}),
    ("repro_cache_misses_total", {"layer": "disk"}),
    ("repro_cache_stores_total", {"layer": "memory"}),
    ("repro_cache_stores_total", {"layer": "disk"}),
    ("repro_cache_put_errors_total", {}),
    ("repro_cache_quarantined_total", {}),
    ("repro_budget_heartbeats_total", {}),
    ("repro_budget_expirations_total", {"reason": "deadline"}),
    ("repro_budget_expirations_total", {"reason": "nodes"}),
    ("repro_budget_expirations_total", {"reason": "forced"}),
    ("repro_verify_checks_total", {"check": "structure", "outcome": "passed"}),
    ("repro_verify_checks_total", {"check": "structure", "outcome": "failed"}),
    ("repro_verify_checks_total", {"check": "fixedpoint", "outcome": "passed"}),
    ("repro_verify_checks_total", {"check": "fixedpoint", "outcome": "failed"}),
    ("repro_verify_checks_total", {"check": "equivalence", "outcome": "passed"}),
    ("repro_verify_checks_total", {"check": "equivalence", "outcome": "failed"}),
    ("repro_verify_mutants_total", {"outcome": "killed"}),
    ("repro_verify_mutants_total", {"outcome": "escaped"}),
    ("repro_service_admitted_total", {}),
    ("repro_service_rejected_total", {"reason": "queue_full"}),
    ("repro_service_rejected_total", {"reason": "tenant_full"}),
    ("repro_service_breaker_trips_total", {}),
    ("repro_service_jobs_total", {"status": "completed"}),
    ("repro_service_jobs_total", {"status": "failed"}),
    ("repro_service_jobs_total", {"status": "discarded"}),
    ("repro_service_jobs_total", {"status": "aborted"}),
    ("repro_service_jobs_expired_total", {}),
    ("repro_service_jobs_resumed_total", {}),
    ("repro_service_wal_errors_total", {}),
    ("repro_service_compaction_errors_total", {}),
    ("repro_client_retries_total", {}),
    ("repro_client_breaker_trips_total", {}),
    ("repro_client_deadlines_total", {}),
    ("repro_service_tenant_admitted_total", {"tenant": "default"}),
    ("repro_service_tenant_rejected_total",
     {"tenant": "default", "reason": "queue_full"}),
    ("repro_service_tenant_rejected_total",
     {"tenant": "default", "reason": "tenant_full"}),
)

#: Histogram series pre-registered alongside the counters.  Zero-observation
#: histograms render a full bucket ladder in the exposition, so declaring a
#: route here means a scraper sees its latency series from the first scrape.
_PREDECLARED_HISTOGRAMS = (
    ("repro_service_queue_wait_seconds", {}),
    ("repro_service_run_seconds", {}),
    ("repro_http_request_seconds", {"route": "/v1/jobs", "method": "POST"}),
    ("repro_http_request_seconds", {"route": "/v1/jobs", "method": "GET"}),
    ("repro_http_request_seconds", {"route": "/v1/jobs/{id}", "method": "GET"}),
    ("repro_http_request_seconds",
     {"route": "/v1/jobs/{id}", "method": "DELETE"}),
    ("repro_http_request_seconds",
     {"route": "/v1/jobs/{id}/result", "method": "GET"}),
    ("repro_http_request_seconds", {"route": "/v1/artifacts", "method": "GET"}),
    ("repro_http_request_seconds",
     {"route": "/v1/artifacts/{kind}", "method": "GET"}),
    ("repro_http_request_seconds", {"route": "/metrics", "method": "GET"}),
    ("repro_http_request_seconds", {"route": "/healthz", "method": "GET"}),
    ("repro_http_request_seconds", {"route": "/readyz", "method": "GET"}),
)


def predeclare_metrics() -> None:
    """Register the full metric vocabulary at 0 in the default registry.

    Called from :func:`configure` and from the job service's startup, so a
    scraper (or the ``/metrics`` endpoint) can rely on every known series
    being present rather than appearing only after its first increment.
    """
    for name, labels in _PREDECLARED_COUNTERS:
        DEFAULT_REGISTRY.counter(name, **labels)
    for name, labels in _PREDECLARED_HISTOGRAMS:
        DEFAULT_REGISTRY.histogram(name, **labels)


def _observe_span(name: str, wall_s: float) -> None:
    DEFAULT_REGISTRY.histogram("repro_span_seconds", span=name).observe(wall_s)


# -- parent-side configuration ------------------------------------------------


def configure(
    trace_path: Optional[os.PathLike] = None,
    metrics_path: Optional[os.PathLike] = None,
) -> None:
    """Enable observability for this process.

    ``trace_path`` installs a JSONL-exporting tracer; ``metrics_path``
    records where :func:`finalize` should write the Prometheus exposition.
    Either may be given alone.  Calling with both ``None`` is a no-op —
    the disabled default stays disabled.
    """
    global _TRACER, _METRICS_PATH
    if trace_path is not None:
        if _TRACER is not None:
            _TRACER.close()
        _TRACER = Tracer(JsonlSink(trace_path), on_span=_observe_span)
        _TRACER.profiler = _PROFILER
    if metrics_path is not None:
        _METRICS_PATH = Path(metrics_path)
    if trace_path is not None or metrics_path is not None:
        predeclare_metrics()


def enabled() -> bool:
    """True when tracing or metrics export is configured in this process."""
    return _TRACER is not None or _METRICS_PATH is not None


def tracing_enabled() -> bool:
    """True when a tracer is installed (spans are being recorded)."""
    return _TRACER is not None


def span(name: str, **tags: Any):
    """Open a phase span, or the shared no-op context when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN_CONTEXT
    return tracer.span(name, **tags)


def event(name: str, **tags: Any) -> None:
    """Emit a point event into the trace (no-op when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **tags)


def flush() -> None:
    """Flush the trace sink to disk (no-op when tracing is off).

    The service calls this per request so a SIGKILL loses at most the
    in-flight request's spans — the durability cross-restart trace links
    depend on.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.flush()


# -- distributed trace context -------------------------------------------------


def trace_context(ctx):
    """Scope making ``ctx`` the root-span context for this thread.

    ``ctx`` may be a :class:`TraceContext`, a raw ``(trace_id, link)``
    pair as persisted on a :class:`~repro.service.store.JobRecord`
    (``link`` a ``[pid, id]`` list or ``None``), or ``None`` to reset to
    the process default.  Returns the shared no-op context when tracing
    is off, so callers never branch.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN_CONTEXT
    if ctx is not None and not isinstance(ctx, TraceContext):
        trace_id, link = ctx
        if trace_id is None:
            ctx = None
        else:
            ctx = TraceContext(
                trace_id, tuple(link) if link else None
            )
    return tracer.adopt(ctx)


def current_context() -> Optional[TraceContext]:
    """The context a downstream process should continue from, if tracing."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_context()


def current_traceparent() -> Optional[str]:
    """Wire-format header value for the current context (None when off)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return format_traceparent(tracer.current_context())


def enable_profile(span_name: str, out_dir: os.PathLike, every: int = 1):
    """Attach a sampled ``cProfile`` hook to spans named ``span_name``.

    Effective in this process only — deliberately not shipped through
    :func:`worker_args` (a profiler in every pool worker would serialize
    the sweep it is measuring).  Survives re-:func:`configure`; cleared
    by :func:`reset`.  Returns the installed profiler.
    """
    global _PROFILER
    from .profile import SpanProfiler

    _PROFILER = SpanProfiler(span_name, out_dir, every=every)
    if _TRACER is not None:
        _TRACER.profiler = _PROFILER
    return _PROFILER


def _ensure_spill_dir() -> Optional[Path]:
    """The shared spill directory for worker telemetry (created lazily)."""
    global _SPILL_DIR
    if not enabled():
        return None
    if _SPILL_DIR is None:
        anchor = (
            _TRACER.sink.path if _TRACER is not None else _METRICS_PATH
        )
        if anchor is not None:
            spill = Path(f"{anchor}.spill.d")
            spill.mkdir(parents=True, exist_ok=True)
        else:  # pragma: no cover - enabled() implies an anchor exists
            spill = Path(tempfile.mkdtemp(prefix="repro-obs-spill-"))
        _SPILL_DIR = spill
    return _SPILL_DIR


def worker_args() -> Optional[Tuple[str, bool, Optional[Tuple]]]:
    """Picklable obs setup for a pool initializer (None when disabled).

    The third element carries the coordinator's current trace context as
    ``(trace_id, [pid, id] | None)``; called inside the ``sweep.precompute``
    span, it makes every worker's root spans (``sweep.task``) link back to
    that span and share the job's trace id.
    """
    spill = _ensure_spill_dir()
    if spill is None:
        return None
    ctx = None
    if _TRACER is not None:
        cur = _TRACER.current_context()
        ctx = (cur.trace_id, list(cur.link) if cur.link is not None else None)
    return str(spill), _TRACER is not None, ctx


def drain_spill() -> None:
    """Fold worker spill files back into this process's trace and registry.

    Only call once the pool has drained (worker files are rewritten at task
    boundaries; a live writer could be mid-rename).  Merged files are
    deleted so repeated drains never double-count.
    """
    spill = _SPILL_DIR
    if spill is None or not spill.is_dir():
        return
    for path in sorted(spill.glob("metrics-*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                DEFAULT_REGISTRY.merge(json.load(fh))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            counter("repro_obs_spill_errors_total").inc()
            continue
        path.unlink(missing_ok=True)
    tracer = _TRACER
    for path in sorted(spill.glob("trace-*.jsonl")):
        if tracer is not None:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        if line.endswith("\n"):  # drop a torn final line
                            tracer.sink.write_raw(line)
            except OSError:
                counter("repro_obs_spill_errors_total").inc()
                continue
        path.unlink(missing_ok=True)


def finalize() -> Dict[str, str]:
    """Drain spill, write the metrics exposition, close the tracer.

    Returns ``{"trace": path}`` / ``{"metrics": path}`` for whatever was
    actually written.  Leaves the process disabled (fresh :func:`configure`
    required), but keeps registry values readable for reports and tests.
    """
    global _TRACER, _METRICS_PATH, _SPILL_DIR
    written: Dict[str, str] = {}
    drain_spill()
    if _TRACER is not None:
        written["trace"] = str(_TRACER.sink.path)
        _TRACER.close()
        _TRACER = None
    if _METRICS_PATH is not None:
        _METRICS_PATH.parent.mkdir(parents=True, exist_ok=True)
        tmp = _METRICS_PATH.with_name(_METRICS_PATH.name + ".tmp")
        # The final exposition is the run's telemetry of record: fsync the
        # bytes and the rename's directory entry so a crash immediately
        # after finalize() cannot lose it.  (Plain ``os`` on purpose — obs
        # sits *below* the crashsim fabric in the import graph.)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(DEFAULT_REGISTRY.exposition())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, _METRICS_PATH)
        try:
            dir_fd = os.open(str(_METRICS_PATH.parent), os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
        written["metrics"] = str(_METRICS_PATH)
        _METRICS_PATH = None
    if _SPILL_DIR is not None:
        try:
            _SPILL_DIR.rmdir()
        except OSError:
            pass  # leftover files from a crashed worker stay for forensics
        _SPILL_DIR = None
    return written


def reset() -> None:
    """Tear down all obs state without exporting anything (test isolation)."""
    global _TRACER, _METRICS_PATH, _SPILL_DIR, _WORKER_METRICS_PATH, _PROFILER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None
    _METRICS_PATH = None
    _SPILL_DIR = None
    _WORKER_METRICS_PATH = None
    _PROFILER = None
    DEFAULT_REGISTRY.reset()


# -- worker-side protocol ------------------------------------------------------


def worker_configure(args: Optional[Tuple]) -> None:
    """Arm observability inside a pool worker (from the pool initializer).

    The forked child inherits the parent's open sink and populated registry;
    both must be discarded — writing through the inherited handle would
    interleave garbage into the parent's file, and spilling inherited
    counters would double-count the parent's pre-fork work after the merge.

    Accepts both the legacy ``(spill_dir, want_trace)`` pair and the
    current triple with a trailing ``(trace_id, link)`` context, so a
    worker never crashes on an args tuple from a different code vintage.
    """
    global _TRACER, _METRICS_PATH, _SPILL_DIR, _WORKER_METRICS_PATH
    if _TRACER is not None:
        _TRACER.sink.abandon()
        _TRACER = None
    _METRICS_PATH = None
    _SPILL_DIR = None
    _WORKER_METRICS_PATH = None
    DEFAULT_REGISTRY.reset()
    if args is None:
        return
    spill_dir, want_trace = args[0], args[1]
    ctx = args[2] if len(args) > 2 else None
    token = f"{os.getpid()}-{time.monotonic_ns()}"
    if want_trace:
        trace_id = None
        link = None
        if ctx is not None and ctx[0] is not None:
            trace_id = ctx[0]
            link = tuple(ctx[1]) if ctx[1] else None
        _TRACER = Tracer(
            JsonlSink(Path(spill_dir) / f"trace-{token}.jsonl"),
            on_span=_observe_span,
            trace_id=trace_id,
            default_link=link,
        )
    _WORKER_METRICS_PATH = Path(spill_dir) / f"metrics-{token}.json"
    atexit.register(_worker_shutdown)


def worker_checkpoint() -> None:
    """Persist this worker's telemetry at a task boundary (cheap when off).

    Flushes the trace sink and atomically rewrites the cumulative metrics
    snapshot, so a worker killed between tasks loses nothing already earned.

    Deliberately **best-effort** (no fsync): checkpoints happen at every
    task boundary, an fsync per task would serialize workers on the disk,
    and a snapshot lost to a power cut is superseded by the next one —
    the atomic rename alone guarantees the merge step never reads a torn
    file.  Consumers must tolerate a missing-after-crash snapshot
    (``scripts/check_trace.py --allow-missing-metrics``).
    """
    if _TRACER is not None:
        _TRACER.flush()
    path = _WORKER_METRICS_PATH
    if path is not None:
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(DEFAULT_REGISTRY.snapshot(), fh,
                          sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _worker_shutdown() -> None:
    global _TRACER
    worker_checkpoint()
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


# -- logging -------------------------------------------------------------------


def setup_logging(level: str = "warning") -> None:
    """Route the ``repro`` logger hierarchy to stderr at ``level``."""
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger("repro")
    logger.setLevel(numeric)
    if not any(
        isinstance(h, logging.StreamHandler) for h in logger.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"
        ))
        logger.addHandler(handler)
