"""Hierarchical phase spans with a deterministic JSONL exporter.

A :class:`Tracer` produces *spans* — named, nested intervals covering one
phase of the synthesis pipeline (``graph.build``, ``cover.exact``,
``sweep.task``, …) — and *events* — zero-duration markers attached to the
enclosing span (``budget.heartbeat``, ``journal.resume``).  Every finished
record is written as one JSON line, so a trace can be streamed, grepped,
truncated, and concatenated without a reader that understands framing.

Determinism: span ids are a per-tracer counter (not random), records are
serialized with sorted keys, and each record carries the producing ``pid``
so per-worker trace files can be concatenated into one trace while keeping
``(pid, id)`` unique and parent references resolvable.  Wall-clock
timestamps (``t``) are present for humans; every derived quantity
(``wall_s``, ``cpu_s``) comes from monotonic/CPU clocks, both injectable
for tests.

The module-level :data:`NULL_SPAN_CONTEXT` is the disabled-path currency:
entering it returns a shared, stateless :class:`_NullSpan`, so code can be
instrumented unconditionally (``with span("cover.exact"): ...``) and pay
only one ``None`` check when tracing is off.

Distributed context: every tracer owns a ``trace_id`` (minted at
construction unless injected) stamped into each record's ``trace`` field,
and root spans may carry a ``link`` — a remote parent as ``[pid, id]`` —
so traces from several processes (client, server before and after a
restart, pool workers) concatenate into one forest whose edges resolve
across process boundaries.  :func:`format_traceparent` /
:func:`parse_traceparent` carry a :class:`TraceContext` over HTTP in a
``traceparent``-style header (``r1-<trace_id>[-<pid>-<span_id>]``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "TRACE_FORMAT_VERSION",
    "JsonlSink",
    "NULL_SPAN_CONTEXT",
    "Span",
    "TraceContext",
    "Tracer",
    "format_traceparent",
    "make_trace_id",
    "parse_traceparent",
]

#: Bump when the record schema changes meaning; written into every record's
#: ``v`` field so readers can reject traces from a different format.
#: The ``trace``/``link`` context fields are additive (readers that ignore
#: them still parse every record), so they did not bump the version.
TRACE_FORMAT_VERSION = 1

#: Header prefix for the wire form of a :class:`TraceContext`.
_TRACEPARENT_PREFIX = "r1"


class TraceContext(NamedTuple):
    """A trace identity plus an optional remote parent to hang spans from.

    ``link`` is ``(pid, span_id)`` of a span in *another* process (or a
    crashed incarnation of this one); a root span opened under this
    context records it so cross-process parent edges stay resolvable
    after trace files are concatenated.
    """

    trace_id: str
    link: Optional[Tuple[int, int]] = None


def make_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id.

    Randomness is fine here: trace ids only need to be distinct, never
    ordered — determinism lives in span ids, which stay counter-based.
    """
    return os.urandom(8).hex()


def format_traceparent(ctx: TraceContext) -> str:
    """Wire form: ``r1-<trace_id>`` or ``r1-<trace_id>-<pid>-<span_id>``."""
    if ctx.link is None:
        return f"{_TRACEPARENT_PREFIX}-{ctx.trace_id}"
    pid, span_id = ctx.link
    return f"{_TRACEPARENT_PREFIX}-{ctx.trace_id}-{pid}-{span_id}"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse the wire form; ``None`` on anything malformed.

    A bad header from an arbitrary HTTP client must degrade to "no
    context", never to a server error.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if parts[0] != _TRACEPARENT_PREFIX:
        return None
    if len(parts) == 2 and parts[1]:
        return TraceContext(parts[1])
    if len(parts) == 4 and parts[1] and parts[2].isdigit() and parts[3].isdigit():
        return TraceContext(parts[1], (int(parts[2]), int(parts[3])))
    return None


class _NullSpan:
    """Stateless stand-in returned when tracing is disabled.

    ``elapsed()`` returns 0.0 so callers can write
    ``span.elapsed() or fallback`` and get a real measurement either way.
    """

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def elapsed(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager — one shared instance, zero allocation."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()


#: Serializes sink file I/O against ``fork()``.  A pool worker forked while
#: another thread (an HTTP handler flushing per request, say) sits inside
#: the file object's buffered write inherits that object's *held* internal
#: lock — and then deadlocks in ``abandon()``'s close.  Holding this lock
#: across every sink write and acquiring it in an at-fork ``before`` hook
#: guarantees no fork ever lands mid-write.  An RLock because ``write``
#: flushes re-entrantly at the FLUSH_EVERY boundary.
_SINK_FORK_LOCK = threading.RLock()


def _release_sink_fork_lock() -> None:
    try:
        _SINK_FORK_LOCK.release()
    except RuntimeError:
        pass  # not held (registered hooks fire for every fork in the process)


if hasattr(os, "register_at_fork"):  # absent on Windows; spawn start there
    os.register_at_fork(
        before=_SINK_FORK_LOCK.acquire,
        after_in_parent=_release_sink_fork_lock,
        after_in_child=_release_sink_fork_lock,
    )


class JsonlSink:
    """Buffered one-record-per-line JSON writer.

    Flushes every :data:`FLUSH_EVERY` records and on :meth:`flush`/
    :meth:`close`, trading a bounded tail loss on SIGKILL for not paying a
    syscall per span in span-dense phases (MSD enumeration emits thousands).
    """

    FLUSH_EVERY = 64

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._pending = 0

    def write(self, record: Dict[str, Any]) -> None:
        """Serialize one record (sorted keys, compact separators)."""
        with _SINK_FORK_LOCK:
            if self._fh is None:
                return
            self._fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._pending += 1
            if self._pending >= self.FLUSH_EVERY:
                self.flush()

    def write_raw(self, line: str) -> None:
        """Append an already-serialized record line (spill-file merging)."""
        with _SINK_FORK_LOCK:
            if self._fh is None:
                return
            if not line.endswith("\n"):
                line += "\n"
            self._fh.write(line)
            self._pending += 1
            if self._pending >= self.FLUSH_EVERY:
                self.flush()

    def flush(self) -> None:
        with _SINK_FORK_LOCK:
            if self._fh is not None:
                self._fh.flush()
                self._pending = 0

    def close(self) -> None:
        with _SINK_FORK_LOCK:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    def abandon(self) -> None:
        """Discard the inherited handle without writing (post-fork child).

        A forked worker inherits the parent's open sink, including any
        records still sitting in the userspace buffer.  Merely dropping the
        reference is not enough: the file object's destructor flushes that
        inherited buffer into the parent's file, duplicating every
        not-yet-flushed record once per worker.  Point the child's
        descriptor at ``/dev/null`` first (``dup2`` only rewrites this
        process's descriptor table entry), then close, so the stale buffer
        drains harmlessly.
        """
        with _SINK_FORK_LOCK:
            fh = self._fh
            self._fh = None
        if fh is None:
            return
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            try:
                os.dup2(devnull, fh.fileno())
            finally:
                os.close(devnull)
            fh.close()
        except (OSError, ValueError):
            pass  # raw inherited handle in a weird state; losing it is fine


class Span:
    """One live phase interval; also its own context manager.

    Exiting the span computes wall/CPU time, marks ``status`` (``"error"``
    when an exception passed through), and emits the record.  Exceptions are
    never swallowed.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "tags",
        "trace_id", "link", "_t0", "_cpu0", "start_ts", "_prof",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        tags: Dict[str, Any],
        trace_id: str,
        link: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.trace_id = trace_id
        self.link = link
        self._prof = None
        self.start_ts = time.time()
        self._t0 = tracer._clock()
        self._cpu0 = tracer._cpu_clock()

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; chainable."""
        self.tags[key] = value
        return self

    def elapsed(self) -> float:
        """Seconds since the span opened (monotonic)."""
        return self.tracer._clock() - self._t0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        profiler = self.tracer.profiler
        if profiler is not None:
            self._prof = profiler.maybe_start(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._prof is not None:
            profiler = self.tracer.profiler
            if profiler is not None:
                profiler.finish(
                    self._prof, self.name, self.tracer.pid, self.span_id
                )
            self._prof = None
        self.tracer._pop(self)
        status = "ok" if exc_type is None else "error"
        error = None if exc is None else f"{exc_type.__name__}: {exc}"
        self.tracer._emit_span(self, status, error)
        return False


class Tracer:
    """Produces nested spans and point events, emitting JSONL records.

    ``on_span`` (optional) is called with ``(name, wall_s)`` for every
    finished span — the hook the metrics layer uses to feed its latency
    histograms without the tracer importing metrics.

    ``trace_id`` is minted when not injected, so a whole process shares
    one trace by default; ``default_link`` is the remote parent given to
    root spans when no per-thread context is adopted (how pool workers
    hang their ``sweep.task`` spans under the coordinator's span).
    ``profiler`` (assignable) is an optional
    :class:`repro.obs.profile.SpanProfiler` consulted on span entry.
    """

    def __init__(
        self,
        sink: JsonlSink,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
        on_span: Optional[Callable[[str, float], None]] = None,
        trace_id: Optional[str] = None,
        default_link: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.sink = sink
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._on_span = on_span
        self._next_id = 1
        self._local = threading.local()
        self.pid = os.getpid()
        self.trace_id = trace_id if trace_id is not None else make_trace_id()
        self.default_link = default_link
        self.profiler = None

    # -- span stack ----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits, never corrupt
            stack.remove(span)

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- distributed context -------------------------------------------------

    def current_context(self) -> TraceContext:
        """The context a downstream process should continue from.

        Innermost open span wins (its id becomes the link), then the
        thread's adopted context, then the tracer default.
        """
        stack = self._stack()
        if stack:
            top = stack[-1]
            return TraceContext(top.trace_id, (self.pid, top.span_id))
        adopted = getattr(self._local, "context", None)
        if adopted is not None:
            return adopted
        return TraceContext(self.trace_id, self.default_link)

    def adopt(self, ctx: Optional[TraceContext]) -> "_AdoptScope":
        """Scope that makes ``ctx`` this thread's root-span context.

        Adopting ``None`` resets to the tracer default — the per-request
        discipline a thread-reusing server needs (a keep-alive thread
        must never leak the previous request's context into the next).
        """
        return _AdoptScope(self, ctx)

    # -- record production ---------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span nested under the current one (context manager)."""
        span_id = self._next_id
        self._next_id += 1
        stack = self._stack()
        if stack:
            top = stack[-1]
            return Span(self, name, span_id, top.span_id, tags, top.trace_id)
        ctx = getattr(self._local, "context", None)
        if ctx is None:
            ctx = TraceContext(self.trace_id, self.default_link)
        return Span(self, name, span_id, None, tags, ctx.trace_id, ctx.link)

    def event(self, name: str, **tags: Any) -> None:
        """Emit a zero-duration marker attached to the enclosing span."""
        stack = self._stack()
        if stack:
            parent, trace_id = stack[-1].span_id, stack[-1].trace_id
        else:
            ctx = getattr(self._local, "context", None)
            parent = None
            trace_id = ctx.trace_id if ctx is not None else self.trace_id
        self.sink.write({
            "v": TRACE_FORMAT_VERSION,
            "kind": "event",
            "name": name,
            "pid": self.pid,
            "parent": parent,
            "t": time.time(),
            "trace": trace_id,
            "tags": _json_safe_tags(tags),
        })

    def _emit_span(self, span: Span, status: str, error: Optional[str]) -> None:
        wall_s = max(0.0, self._clock() - span._t0)
        record: Dict[str, Any] = {
            "v": TRACE_FORMAT_VERSION,
            "kind": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "pid": self.pid,
            "t": span.start_ts,
            "wall_s": wall_s,
            "cpu_s": max(0.0, self._cpu_clock() - span._cpu0),
            "status": status,
            "trace": span.trace_id,
            "tags": _json_safe_tags(span.tags),
        }
        if span.parent_id is None and span.link is not None:
            record["link"] = [span.link[0], span.link[1]]
        if error is not None:
            record["error"] = error
        self.sink.write(record)
        if self._on_span is not None:
            self._on_span(span.name, wall_s)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


class _AdoptScope:
    """Sets a thread's adopted context on entry, restores it on exit."""

    __slots__ = ("_tracer", "_ctx", "_prev")

    def __init__(self, tracer: Tracer, ctx: Optional[TraceContext]) -> None:
        self._tracer = tracer
        self._ctx = ctx
        self._prev = None

    def __enter__(self) -> "_AdoptScope":
        local = self._tracer._local
        self._prev = getattr(local, "context", None)
        local.context = self._ctx
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._local.context = self._prev
        return False


def _json_safe_tags(tags: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce tag values to JSON-serializable scalars (repr as last resort)."""
    safe: Dict[str, Any] = {}
    for key, value in tags.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe
