"""Hierarchical phase spans with a deterministic JSONL exporter.

A :class:`Tracer` produces *spans* — named, nested intervals covering one
phase of the synthesis pipeline (``graph.build``, ``cover.exact``,
``sweep.task``, …) — and *events* — zero-duration markers attached to the
enclosing span (``budget.heartbeat``, ``journal.resume``).  Every finished
record is written as one JSON line, so a trace can be streamed, grepped,
truncated, and concatenated without a reader that understands framing.

Determinism: span ids are a per-tracer counter (not random), records are
serialized with sorted keys, and each record carries the producing ``pid``
so per-worker trace files can be concatenated into one trace while keeping
``(pid, id)`` unique and parent references resolvable.  Wall-clock
timestamps (``t``) are present for humans; every derived quantity
(``wall_s``, ``cpu_s``) comes from monotonic/CPU clocks, both injectable
for tests.

The module-level :data:`NULL_SPAN_CONTEXT` is the disabled-path currency:
entering it returns a shared, stateless :class:`_NullSpan`, so code can be
instrumented unconditionally (``with span("cover.exact"): ...``) and pay
only one ``None`` check when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "TRACE_FORMAT_VERSION",
    "JsonlSink",
    "NULL_SPAN_CONTEXT",
    "Span",
    "Tracer",
]

#: Bump when the record schema changes meaning; written into every record's
#: ``v`` field so readers can reject traces from a different format.
TRACE_FORMAT_VERSION = 1


class _NullSpan:
    """Stateless stand-in returned when tracing is disabled.

    ``elapsed()`` returns 0.0 so callers can write
    ``span.elapsed() or fallback`` and get a real measurement either way.
    """

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def elapsed(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager — one shared instance, zero allocation."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()


class JsonlSink:
    """Buffered one-record-per-line JSON writer.

    Flushes every :data:`FLUSH_EVERY` records and on :meth:`flush`/
    :meth:`close`, trading a bounded tail loss on SIGKILL for not paying a
    syscall per span in span-dense phases (MSD enumeration emits thousands).
    """

    FLUSH_EVERY = 64

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._pending = 0

    def write(self, record: Dict[str, Any]) -> None:
        """Serialize one record (sorted keys, compact separators)."""
        if self._fh is None:
            return
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._pending += 1
        if self._pending >= self.FLUSH_EVERY:
            self.flush()

    def write_raw(self, line: str) -> None:
        """Append an already-serialized record line (spill-file merging)."""
        if self._fh is None:
            return
        if not line.endswith("\n"):
            line += "\n"
        self._fh.write(line)
        self._pending += 1
        if self._pending >= self.FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def abandon(self) -> None:
        """Discard the inherited handle without writing (post-fork child).

        A forked worker inherits the parent's open sink, including any
        records still sitting in the userspace buffer.  Merely dropping the
        reference is not enough: the file object's destructor flushes that
        inherited buffer into the parent's file, duplicating every
        not-yet-flushed record once per worker.  Point the child's
        descriptor at ``/dev/null`` first (``dup2`` only rewrites this
        process's descriptor table entry), then close, so the stale buffer
        drains harmlessly.
        """
        fh = self._fh
        self._fh = None
        if fh is None:
            return
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            try:
                os.dup2(devnull, fh.fileno())
            finally:
                os.close(devnull)
            fh.close()
        except (OSError, ValueError):
            pass  # raw inherited handle in a weird state; losing it is fine


class Span:
    """One live phase interval; also its own context manager.

    Exiting the span computes wall/CPU time, marks ``status`` (``"error"``
    when an exception passed through), and emits the record.  Exceptions are
    never swallowed.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "tags",
        "_t0", "_cpu0", "start_ts",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        tags: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.start_ts = time.time()
        self._t0 = tracer._clock()
        self._cpu0 = tracer._cpu_clock()

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; chainable."""
        self.tags[key] = value
        return self

    def elapsed(self) -> float:
        """Seconds since the span opened (monotonic)."""
        return self.tracer._clock() - self._t0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._pop(self)
        status = "ok" if exc_type is None else "error"
        error = None if exc is None else f"{exc_type.__name__}: {exc}"
        self.tracer._emit_span(self, status, error)
        return False


class Tracer:
    """Produces nested spans and point events, emitting JSONL records.

    ``on_span`` (optional) is called with ``(name, wall_s)`` for every
    finished span — the hook the metrics layer uses to feed its latency
    histograms without the tracer importing metrics.
    """

    def __init__(
        self,
        sink: JsonlSink,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
        on_span: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.sink = sink
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._on_span = on_span
        self._next_id = 1
        self._local = threading.local()
        self.pid = os.getpid()

    # -- span stack ----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits, never corrupt
            stack.remove(span)

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- record production ---------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span nested under the current one (context manager)."""
        span_id = self._next_id
        self._next_id += 1
        return Span(self, name, span_id, self.current_span_id(), tags)

    def event(self, name: str, **tags: Any) -> None:
        """Emit a zero-duration marker attached to the enclosing span."""
        self.sink.write({
            "v": TRACE_FORMAT_VERSION,
            "kind": "event",
            "name": name,
            "pid": self.pid,
            "parent": self.current_span_id(),
            "t": time.time(),
            "tags": _json_safe_tags(tags),
        })

    def _emit_span(self, span: Span, status: str, error: Optional[str]) -> None:
        wall_s = max(0.0, self._clock() - span._t0)
        record: Dict[str, Any] = {
            "v": TRACE_FORMAT_VERSION,
            "kind": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "pid": self.pid,
            "t": span.start_ts,
            "wall_s": wall_s,
            "cpu_s": max(0.0, self._cpu_clock() - span._cpu0),
            "status": status,
            "tags": _json_safe_tags(span.tags),
        }
        if error is not None:
            record["error"] = error
        self.sink.write(record)
        if self._on_span is not None:
            self._on_span(span.name, wall_s)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


def _json_safe_tags(tags: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce tag values to JSON-serializable scalars (repr as last resort)."""
    safe: Dict[str, Any] = {}
    for key, value in tags.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe
