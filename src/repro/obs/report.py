"""Read, validate, and analyze JSONL traces.

Consumed by the ``stats``/``timeline``/``critical-path``/``export-chrome``
CLI subcommands and by ``scripts/check_trace.py`` (the CI schema gate).
Kept dependency-free and read-only: everything operates on the list of
plain-dict records :func:`load_trace` returns.

Multi-process traces: JSONL concatenates, so the files written by a
client, several server incarnations, and their pool workers merge with
``load_traces`` (or plain ``cat``) into one record list.  ``(pid, id)``
keys spans, in-process edges use ``parent``, and cross-process edges use
a root span's ``link`` (``[pid, id]`` of the remote parent) — together
they reconstruct one forest per ``trace`` id, which the timeline and
critical-path analyses below walk.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import TRACE_FORMAT_VERSION

__all__ = [
    "PhaseStats",
    "build_timeline",
    "critical_path",
    "filter_trace",
    "format_breakdown",
    "format_critical_path",
    "format_timeline",
    "job_trace_continuity",
    "load_trace",
    "load_traces",
    "phase_breakdown",
    "to_chrome_trace",
    "trace_id_for_job",
    "validate_trace",
]

_REQUIRED_SPAN_FIELDS = ("name", "id", "pid", "wall_s", "cpu_s", "status", "tags")
_REQUIRED_EVENT_FIELDS = ("name", "pid", "tags")


def load_trace(
    path: os.PathLike, allow_torn_tail: bool = False
) -> List[Dict[str, Any]]:
    """Parse a JSONL trace into its records.

    Raises ``ValueError`` on an unparseable line — a trace that cannot be
    read end-to-end should fail loudly, not be half-summarized.  The one
    expected exception is a torn *final* line from a SIGKILL'd process:
    with ``allow_torn_tail=True`` exactly one unparseable line is
    tolerated, and only if nothing follows it — a second bad line, or a
    bad line with good records after it, is corruption either way and
    still raises.  The CI gate's default mode stays strict.
    """
    records: List[Dict[str, Any]] = []
    pending_error: Optional[ValueError] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                raise pending_error  # the torn line was not the last line
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                error = ValueError(f"{path}:{lineno}: unparseable line: {exc}")
                if not allow_torn_tail:
                    raise error
                pending_error = error
                continue
            records.append(record)
    return records


def load_traces(
    paths: Iterable[os.PathLike], allow_torn_tail: bool = False
) -> List[Dict[str, Any]]:
    """Concatenate several trace files into one record list.

    ``allow_torn_tail`` applies per file: each killed process may have
    torn its own final line.
    """
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(load_trace(path, allow_torn_tail=allow_torn_tail))
    return records


def validate_trace(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema-check a trace; returns a list of problems (empty when valid).

    Checks: every record is a span or event of the current format version
    with its required fields, ``(pid, id)`` is unique across spans,
    durations are non-negative, every parent reference points at a span
    that exists in the same process, and the optional ``trace``/``link``
    context fields are well-formed.  A ``link`` must resolve only when
    its target pid has spans in this record set at all — a single-process
    file legitimately links into a process whose file was not merged in
    (or that died before closing the span).
    """
    problems: List[str] = []
    span_ids: set = set()
    span_pids: set = set()
    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind not in ("span", "event"):
            problems.append(f"record {i}: unknown kind {kind!r}")
            continue
        if record.get("v") != TRACE_FORMAT_VERSION:
            problems.append(
                f"record {i}: format version {record.get('v')!r} != "
                f"{TRACE_FORMAT_VERSION}"
            )
        required = (
            _REQUIRED_SPAN_FIELDS if kind == "span" else _REQUIRED_EVENT_FIELDS
        )
        missing = [f for f in required if f not in record]
        if missing:
            problems.append(f"record {i}: missing fields {missing}")
            continue
        if "trace" in record and not (
            record["trace"] is None or isinstance(record["trace"], str)
        ):
            problems.append(f"record {i}: trace id is not a string")
        if kind == "span":
            key = (record["pid"], record["id"])
            if key in span_ids:
                problems.append(f"record {i}: duplicate span id {key}")
            span_ids.add(key)
            span_pids.add(record["pid"])
            if record["wall_s"] < 0 or record["cpu_s"] < 0:
                problems.append(f"record {i}: negative duration")
            if record["status"] not in ("ok", "error"):
                problems.append(
                    f"record {i}: bad status {record['status']!r}"
                )
            if not isinstance(record["tags"], dict):
                problems.append(f"record {i}: tags is not an object")
            link = record.get("link")
            if link is not None:
                if (
                    not isinstance(link, (list, tuple))
                    or len(link) != 2
                    or not all(isinstance(x, int) for x in link)
                ):
                    problems.append(f"record {i}: malformed link {link!r}")
                elif record.get("parent") is not None:
                    problems.append(
                        f"record {i}: link on a non-root span (parent "
                        f"{record['parent']})"
                    )
    # Parent resolution is a second pass: children are emitted before their
    # parents (exit order), so the referenced span may appear later.
    for i, record in enumerate(records):
        if record.get("kind") not in ("span", "event"):
            continue
        parent = record.get("parent")
        if parent is not None:
            if (record.get("pid"), parent) not in span_ids:
                problems.append(
                    f"record {i}: parent {parent} not found in pid "
                    f"{record.get('pid')}"
                )
        link = record.get("link")
        if (
            isinstance(link, (list, tuple))
            and len(link) == 2
            and all(isinstance(x, int) for x in link)
            and link[0] in span_pids
            and (link[0], link[1]) not in span_ids
        ):
            problems.append(
                f"record {i}: link {tuple(link)} not found although pid "
                f"{link[0]} is present"
            )
    return problems


class PhaseStats:
    """Aggregate of every span sharing one name."""

    __slots__ = ("name", "count", "errors", "wall_s", "self_s", "cpu_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.wall_s = 0.0
        self.self_s = 0.0
        self.cpu_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0


def phase_breakdown(
    records: Sequence[Dict[str, Any]],
) -> List[PhaseStats]:
    """Per-phase totals, sorted by *self* time (wall minus child wall) desc.

    Self time is what makes the table additive: nested spans double-count
    wall time, but each second of execution belongs to exactly one phase's
    self time, so the ``self_s`` column sums to the traced total.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    child_wall: Dict[Tuple[Any, Any], float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            key = (record["pid"], parent)
            child_wall[key] = child_wall.get(key, 0.0) + record["wall_s"]
    phases: Dict[str, PhaseStats] = {}
    for record in spans:
        stats = phases.get(record["name"])
        if stats is None:
            stats = phases[record["name"]] = PhaseStats(record["name"])
        wall = record["wall_s"]
        stats.count += 1
        stats.wall_s += wall
        stats.cpu_s += record["cpu_s"]
        stats.max_s = max(stats.max_s, wall)
        stats.self_s += max(
            0.0, wall - child_wall.get((record["pid"], record["id"]), 0.0)
        )
        if record.get("status") == "error":
            stats.errors += 1
    return sorted(
        phases.values(), key=lambda s: (-s.self_s, -s.wall_s, s.name)
    )


def format_breakdown(phases: Sequence[PhaseStats]) -> str:
    """Render the per-phase breakdown as an aligned text table."""
    total_self = sum(p.self_s for p in phases) or 1.0
    header = (
        f"{'phase':<22} {'count':>7} {'errors':>6} {'wall_s':>10} "
        f"{'self_s':>10} {'cpu_s':>10} {'mean_s':>10} {'max_s':>10} {'self%':>6}"
    )
    lines = [header, "-" * len(header)]
    for p in phases:
        lines.append(
            f"{p.name:<22} {p.count:>7} {p.errors:>6} {p.wall_s:>10.4f} "
            f"{p.self_s:>10.4f} {p.cpu_s:>10.4f} {p.mean_s:>10.4f} "
            f"{p.max_s:>10.4f} {100.0 * p.self_s / total_self:>5.1f}%"
        )
    if not phases:
        lines.append("(no spans)")
    return "\n".join(lines)


# -- per-job trace selection ---------------------------------------------------


def trace_id_for_job(
    records: Sequence[Dict[str, Any]], job_id: str
) -> Optional[str]:
    """The trace id of ``job_id``'s ``service.job`` span, if recorded."""
    for record in records:
        if (
            record.get("kind") == "span"
            and record.get("name") == "service.job"
            and record.get("tags", {}).get("job_id") == job_id
            and record.get("trace")
        ):
            return record["trace"]
    return None


def filter_trace(
    records: Sequence[Dict[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """Only the records stamped with ``trace_id``."""
    return [r for r in records if r.get("trace") == trace_id]


def job_trace_continuity(
    records: Sequence[Dict[str, Any]],
    job_id: str,
    require: Sequence[str] = (
        "client.request", "service.request", "service.job", "sweep.task",
    ),
) -> List[str]:
    """Certify that one logical job left a single connected trace.

    Returns problems (empty when the story holds): the job's
    ``service.job`` spans all carry one trace id, every required span
    name appears inside that trace, ``(pid, id)`` stays unique after the
    multi-process merge, and every parent/link edge resolves (links under
    the same soft rule as :func:`validate_trace` — a link into a process
    with no spans at all means that file was not merged, not that the
    trace is broken).
    """
    problems: List[str] = []
    job_spans = [
        r for r in records
        if r.get("kind") == "span"
        and r.get("name") == "service.job"
        and r.get("tags", {}).get("job_id") == job_id
    ]
    if not job_spans:
        return [f"no service.job span tagged job_id={job_id!r}"]
    trace_ids = {r.get("trace") for r in job_spans} - {None}
    if not trace_ids:
        return [f"service.job spans for {job_id!r} carry no trace id"]
    if len(trace_ids) > 1:
        problems.append(
            f"job {job_id!r} spans multiple trace ids: {sorted(trace_ids)}"
        )
    trace_id = sorted(trace_ids)[0]
    trace = filter_trace(records, trace_id)
    span_keys: set = set()
    span_pids: set = set()
    for record in trace:
        if record.get("kind") != "span":
            continue
        key = (record["pid"], record["id"])
        if key in span_keys:
            problems.append(f"duplicate span id {key} in trace {trace_id}")
        span_keys.add(key)
        span_pids.add(record["pid"])
    names = {r["name"] for r in trace if r.get("kind") == "span"}
    for needed in require:
        if needed not in names:
            problems.append(
                f"trace {trace_id} is missing a {needed!r} span"
            )
    for record in trace:
        if record.get("kind") != "span":
            continue
        parent = record.get("parent")
        if parent is not None and (record["pid"], parent) not in span_keys:
            problems.append(
                f"span ({record['pid']}, {record['id']}): parent {parent} "
                f"unresolved in trace {trace_id}"
            )
        link = record.get("link")
        if (
            isinstance(link, (list, tuple))
            and len(link) == 2
            and link[0] in span_pids
            and tuple(link) not in span_keys
        ):
            problems.append(
                f"span ({record['pid']}, {record['id']}): link "
                f"{tuple(link)} unresolved in trace {trace_id}"
            )
    return problems


# -- forest reconstruction -----------------------------------------------------


class _Node:
    """One span in the reconstructed cross-process forest."""

    __slots__ = ("rec", "children", "start", "end")

    def __init__(self, rec: Dict[str, Any]) -> None:
        self.rec = rec
        self.children: List["_Node"] = []
        self.start = float(rec.get("t", 0.0))
        self.end = self.start + float(rec.get("wall_s", 0.0))


def _parent_key(rec: Dict[str, Any]) -> Optional[Tuple[int, int]]:
    """The (pid, id) this span hangs from: in-process parent, else link."""
    parent = rec.get("parent")
    if parent is not None:
        return (rec["pid"], parent)
    link = rec.get("link")
    if isinstance(link, (list, tuple)) and len(link) == 2:
        return (link[0], link[1])
    return None


def _build_forest(
    records: Sequence[Dict[str, Any]],
) -> Tuple[Dict[Tuple[int, int], _Node], List[_Node]]:
    """Index spans by (pid, id) and wire parent/link edges into trees.

    A span whose parent key is absent (file not merged, or the parent
    died before closing) becomes a root — analysis degrades to a forest
    rather than failing.
    """
    nodes: Dict[Tuple[int, int], _Node] = {}
    for rec in records:
        if rec.get("kind") != "span":
            continue
        key = (rec["pid"], rec["id"])
        if key not in nodes:  # first writer wins on (illegal) duplicates
            nodes[key] = _Node(rec)
    roots: List[_Node] = []
    for key, node in nodes.items():
        pkey = _parent_key(node.rec)
        parent = nodes.get(pkey) if pkey is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.rec["pid"], n.rec["id"]))
    roots.sort(key=lambda n: (n.start, n.rec["pid"], n.rec["id"]))
    return nodes, roots


# -- timeline ------------------------------------------------------------------


def build_timeline(
    records: Sequence[Dict[str, Any]],
    trace_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Flatten the (optionally trace-filtered) span forest to drawable rows.

    Rows come out in depth-first chronological order with ``depth``,
    ``offset_s`` (from the earliest span's start), ``wall_s``, and
    identity fields — the CLI renderer and tests both consume this rather
    than re-walking the forest.
    """
    if trace_id is not None:
        records = filter_trace(records, trace_id)
    _, roots = _build_forest(records)
    if not roots:
        return []
    t0 = min(node.start for node in roots)
    rows: List[Dict[str, Any]] = []

    def visit(node: _Node, depth: int) -> None:
        rec = node.rec
        rows.append({
            "depth": depth,
            "name": rec["name"],
            "pid": rec["pid"],
            "id": rec["id"],
            "offset_s": node.start - t0,
            "wall_s": float(rec.get("wall_s", 0.0)),
            "status": rec.get("status", "ok"),
            "trace": rec.get("trace"),
            "tags": rec.get("tags", {}),
        })
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return rows


def format_timeline(rows: Sequence[Dict[str, Any]], width: int = 32) -> str:
    """Render timeline rows as an indented table with an ASCII gantt lane."""
    if not rows:
        return "(no spans)"
    window = max(r["offset_s"] + r["wall_s"] for r in rows) or 1.0
    label_w = max(
        24, min(48, max(2 * r["depth"] + len(r["name"]) for r in rows) + 2)
    )
    header = (
        f"{'span':<{label_w}} {'pid':>7} {'offset_s':>10} {'wall_s':>10} "
        f"{'lane':<{width}}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        label = "  " * r["depth"] + r["name"]
        if len(label) > label_w:
            label = label[: label_w - 1] + "…"
        left = int(round(width * r["offset_s"] / window))
        span_w = int(round(width * r["wall_s"] / window))
        left = min(left, width - 1)
        span_w = max(1, min(span_w, width - left))
        lane = " " * left + "█" * span_w
        mark = "!" if r["status"] == "error" else " "
        lines.append(
            f"{label:<{label_w}} {r['pid']:>7} {r['offset_s']:>10.4f} "
            f"{r['wall_s']:>10.4f} {lane:<{width}}{mark}"
        )
    return "\n".join(lines)


# -- critical path -------------------------------------------------------------


def critical_path(
    records: Sequence[Dict[str, Any]],
    root: Optional[Tuple[int, int]] = None,
) -> Dict[str, Any]:
    """Which span intervals actually bound the root's wall-clock time.

    Walks backwards from the root's end: at every instant the *youngest
    still-open descendant* owns the clock, so each segment names the span
    whose work (not its children's) covered that stretch.  The returned
    ``segments`` — chronological ``{name, pid, id, start_s, end_s}`` with
    offsets relative to the root's start — partition the root's window
    exactly: overlapped work (other pool workers running in parallel)
    contributes nothing, which is precisely the point.

    ``root`` selects a specific ``(pid, id)``; the default prefers the
    longest ``service.job`` span (the per-job story), falling back to the
    longest root in the forest.  Returns ``{"root": record, "segments":
    [...], "phases": {name: seconds}}``; empty segments when no spans.
    """
    nodes, roots = _build_forest(records)
    root_node: Optional[_Node] = None
    if root is not None:
        root_node = nodes.get(tuple(root))
        if root_node is None:
            raise ValueError(f"no span with (pid, id) == {tuple(root)}")
    else:
        jobs = [
            n for n in nodes.values() if n.rec["name"] == "service.job"
        ]
        pool = jobs or roots
        if pool:
            root_node = max(pool, key=lambda n: n.end - n.start)
    if root_node is None:
        return {"root": None, "segments": [], "phases": {}}

    t0 = root_node.start
    segments: List[Dict[str, Any]] = []

    def emit(node: _Node, start: float, end: float) -> None:
        segments.append({
            "name": node.rec["name"],
            "pid": node.rec["pid"],
            "id": node.rec["id"],
            "start_s": start - t0,
            "end_s": end - t0,
        })

    def walk(node: _Node, cursor: float) -> None:
        # Backward sweep: children sorted by end desc; the gap between a
        # child's (clamped) end and the cursor is the parent's own time.
        for child in sorted(node.children, key=lambda n: -n.end):
            c_end = min(child.end, cursor)
            c_start = max(child.start, node.start)
            if c_end <= c_start:
                continue  # fully shadowed by a later sibling
            if cursor > c_end:
                emit(node, c_end, cursor)
            walk(child, c_end)
            cursor = c_start
        if cursor > node.start:
            emit(node, node.start, cursor)

    walk(root_node, root_node.end)
    segments.reverse()
    phases: Dict[str, float] = {}
    for seg in segments:
        phases[seg["name"]] = (
            phases.get(seg["name"], 0.0) + seg["end_s"] - seg["start_s"]
        )
    return {"root": dict(root_node.rec), "segments": segments, "phases": phases}


def format_critical_path(result: Dict[str, Any]) -> str:
    """Render a :func:`critical_path` result as text."""
    root = result["root"]
    segments = result["segments"]
    if root is None or not segments:
        return "(no spans)"
    total = segments[-1]["end_s"] - segments[0]["start_s"]
    lines = [
        f"critical path of {root['name']} "
        f"(pid {root['pid']}, id {root['id']}, "
        f"{root.get('wall_s', 0.0):.4f}s wall)",
        "",
        f"{'start_s':>10} {'end_s':>10} {'dur_s':>10}  segment",
        "-" * 56,
    ]
    for seg in segments:
        dur = seg["end_s"] - seg["start_s"]
        lines.append(
            f"{seg['start_s']:>10.4f} {seg['end_s']:>10.4f} {dur:>10.4f}  "
            f"{seg['name']} (pid {seg['pid']}, id {seg['id']})"
        )
    lines.append("")
    lines.append(f"{'phase':<28} {'critical_s':>11} {'share':>7}")
    lines.append("-" * 48)
    denom = total or 1.0
    for name, secs in sorted(
        result["phases"].items(), key=lambda kv: -kv[1]
    ):
        lines.append(
            f"{name:<28} {secs:>11.4f} {100.0 * secs / denom:>6.1f}%"
        )
    return "\n".join(lines)


# -- Chrome trace export -------------------------------------------------------


def to_chrome_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert records to the Chrome/Perfetto trace-event JSON object.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps relative to the earliest record, grouped per source pid;
    point events become instants.  Identity (trace id, span/parent ids,
    link) rides along in ``args`` so the original graph stays recoverable
    inside the viewer.
    """
    timed = [r for r in records if isinstance(r.get("t"), (int, float))]
    t0 = min((r["t"] for r in timed), default=0.0)
    out: List[Dict[str, Any]] = []
    for rec in records:
        kind = rec.get("kind")
        ts = (float(rec.get("t", t0)) - t0) * 1e6
        if kind == "span":
            args: Dict[str, Any] = {
                "id": rec.get("id"),
                "parent": rec.get("parent"),
                "trace": rec.get("trace"),
                "status": rec.get("status"),
            }
            if rec.get("link") is not None:
                args["link"] = list(rec["link"])
            args.update(rec.get("tags", {}) or {})
            out.append({
                "name": rec.get("name", "?"),
                "cat": "span",
                "ph": "X",
                "pid": rec.get("pid", 0),
                "tid": rec.get("pid", 0),
                "ts": ts,
                "dur": max(0.0, float(rec.get("wall_s", 0.0))) * 1e6,
                "args": args,
            })
        elif kind == "event":
            out.append({
                "name": rec.get("name", "?"),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "pid": rec.get("pid", 0),
                "tid": rec.get("pid", 0),
                "ts": ts,
                "args": dict(rec.get("tags", {}) or {}),
            })
    out.sort(key=lambda e: (e["ts"], e["pid"]))
    return {"traceEvents": out, "displayTimeUnit": "ms"}
