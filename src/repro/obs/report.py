"""Read, validate, and summarize JSONL traces.

Consumed by the ``stats`` CLI subcommand (per-phase breakdown table) and by
``scripts/check_trace.py`` (the CI schema gate).  Kept dependency-free and
read-only: everything operates on the list of plain-dict records
:func:`load_trace` returns.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence, Tuple

from .trace import TRACE_FORMAT_VERSION

__all__ = [
    "PhaseStats",
    "format_breakdown",
    "load_trace",
    "phase_breakdown",
    "validate_trace",
]

_REQUIRED_SPAN_FIELDS = ("name", "id", "pid", "wall_s", "cpu_s", "status", "tags")
_REQUIRED_EVENT_FIELDS = ("name", "pid", "tags")


def load_trace(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse a JSONL trace into its records.

    Raises ``ValueError`` on an unparseable line — a trace that cannot be
    read end-to-end should fail loudly, not be half-summarized (a torn tail
    from a killed process is the one expected exception, and even that is a
    single final line, which the caller can drop by re-raising policy; the
    CI gate wants strictness).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: unparseable line: {exc}")
            records.append(record)
    return records


def validate_trace(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema-check a trace; returns a list of problems (empty when valid).

    Checks: every record is a span or event of the current format version
    with its required fields, ``(pid, id)`` is unique across spans,
    durations are non-negative, and every parent reference points at a span
    that exists in the same process.
    """
    problems: List[str] = []
    span_ids: set = set()
    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind not in ("span", "event"):
            problems.append(f"record {i}: unknown kind {kind!r}")
            continue
        if record.get("v") != TRACE_FORMAT_VERSION:
            problems.append(
                f"record {i}: format version {record.get('v')!r} != "
                f"{TRACE_FORMAT_VERSION}"
            )
        required = (
            _REQUIRED_SPAN_FIELDS if kind == "span" else _REQUIRED_EVENT_FIELDS
        )
        missing = [f for f in required if f not in record]
        if missing:
            problems.append(f"record {i}: missing fields {missing}")
            continue
        if kind == "span":
            key = (record["pid"], record["id"])
            if key in span_ids:
                problems.append(f"record {i}: duplicate span id {key}")
            span_ids.add(key)
            if record["wall_s"] < 0 or record["cpu_s"] < 0:
                problems.append(f"record {i}: negative duration")
            if record["status"] not in ("ok", "error"):
                problems.append(
                    f"record {i}: bad status {record['status']!r}"
                )
            if not isinstance(record["tags"], dict):
                problems.append(f"record {i}: tags is not an object")
    # Parent resolution is a second pass: children are emitted before their
    # parents (exit order), so the referenced span may appear later.
    for i, record in enumerate(records):
        if record.get("kind") not in ("span", "event"):
            continue
        parent = record.get("parent")
        if parent is None:
            continue
        if (record.get("pid"), parent) not in span_ids:
            problems.append(
                f"record {i}: parent {parent} not found in pid "
                f"{record.get('pid')}"
            )
    return problems


class PhaseStats:
    """Aggregate of every span sharing one name."""

    __slots__ = ("name", "count", "errors", "wall_s", "self_s", "cpu_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.wall_s = 0.0
        self.self_s = 0.0
        self.cpu_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0


def phase_breakdown(
    records: Sequence[Dict[str, Any]],
) -> List[PhaseStats]:
    """Per-phase totals, sorted by *self* time (wall minus child wall) desc.

    Self time is what makes the table additive: nested spans double-count
    wall time, but each second of execution belongs to exactly one phase's
    self time, so the ``self_s`` column sums to the traced total.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    child_wall: Dict[Tuple[Any, Any], float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            key = (record["pid"], parent)
            child_wall[key] = child_wall.get(key, 0.0) + record["wall_s"]
    phases: Dict[str, PhaseStats] = {}
    for record in spans:
        stats = phases.get(record["name"])
        if stats is None:
            stats = phases[record["name"]] = PhaseStats(record["name"])
        wall = record["wall_s"]
        stats.count += 1
        stats.wall_s += wall
        stats.cpu_s += record["cpu_s"]
        stats.max_s = max(stats.max_s, wall)
        stats.self_s += max(
            0.0, wall - child_wall.get((record["pid"], record["id"]), 0.0)
        )
        if record.get("status") == "error":
            stats.errors += 1
    return sorted(
        phases.values(), key=lambda s: (-s.self_s, -s.wall_s, s.name)
    )


def format_breakdown(phases: Sequence[PhaseStats]) -> str:
    """Render the per-phase breakdown as an aligned text table."""
    total_self = sum(p.self_s for p in phases) or 1.0
    header = (
        f"{'phase':<22} {'count':>7} {'errors':>6} {'wall_s':>10} "
        f"{'self_s':>10} {'cpu_s':>10} {'mean_s':>10} {'max_s':>10} {'self%':>6}"
    )
    lines = [header, "-" * len(header)]
    for p in phases:
        lines.append(
            f"{p.name:<22} {p.count:>7} {p.errors:>6} {p.wall_s:>10.4f} "
            f"{p.self_s:>10.4f} {p.cpu_s:>10.4f} {p.mean_s:>10.4f} "
            f"{p.max_s:>10.4f} {100.0 * p.self_s / total_self:>5.1f}%"
        )
    if not phases:
        lines.append("(no spans)")
    return "\n".join(lines)
