"""Sampled ``cProfile`` capture attachable to any span by name.

A :class:`SpanProfiler` hangs off a live :class:`~repro.obs.trace.Tracer`
(its ``profiler`` attribute); every Nth span whose name matches is run
under a ``cProfile.Profile``, and the stats are dumped to
``profile-<name>-<pid>-<span_id>.pstats`` in ``out_dir`` — loadable with
``pstats.Stats`` or ``snakeviz``-style viewers.

Sampling (``every``) exists because span-dense phases (``sweep.task``
runs once per design point) would otherwise profile everything; the
first match always profiles so a single traced run yields at least one
capture.  Profiles are parent-process only: the hook is deliberately
not propagated through ``worker_args()`` — a profiler in every pool
worker would serialize the sweep it is trying to measure.
"""

from __future__ import annotations

import cProfile
import threading
from pathlib import Path
from typing import Optional

__all__ = ["SpanProfiler"]


class SpanProfiler:
    """Every-Nth ``cProfile`` capture for spans named ``span_name``.

    Thread-safe: the match counter is locked, and each capture owns its
    private ``Profile`` object.  Nested matching spans on one thread are
    not double-profiled (``cProfile`` cannot nest); the inner span is
    simply skipped and does not consume a sample slot.
    """

    def __init__(
        self, span_name: str, out_dir, every: int = 1
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.span_name = span_name
        self.out_dir = Path(out_dir)
        self.every = every
        self.captured = 0
        self._seen = 0
        self._lock = threading.Lock()
        self._active = threading.local()

    def maybe_start(self, name: str) -> Optional[cProfile.Profile]:
        """Start a capture if ``name`` matches and the sample is due."""
        if name != self.span_name:
            return None
        if getattr(self._active, "running", False):
            return None  # cProfile cannot nest; skip the inner span
        with self._lock:
            due = self._seen % self.every == 0
            self._seen += 1
        if not due:
            return None
        prof = cProfile.Profile()
        try:
            prof.enable()
        except ValueError:
            return None  # another profiler is already installed
        self._active.running = True
        return prof

    def finish(
        self, prof: cProfile.Profile, name: str, pid: int, span_id: int
    ) -> Optional[Path]:
        """Stop ``prof`` and dump its stats; returns the written path."""
        prof.disable()
        self._active.running = False
        self.out_dir.mkdir(parents=True, exist_ok=True)
        safe = name.replace("/", "_")
        path = self.out_dir / f"profile-{safe}-{pid}-{span_id}.pstats"
        try:
            prof.dump_stats(str(path))
        except OSError:
            return None  # profiling must never fail the profiled work
        self.captured += 1
        return path
