"""Process-safe counters, gauges, and log-scale latency histograms.

One :class:`MetricsRegistry` lives per process (:data:`DEFAULT_REGISTRY`).
Collection is always on — an increment is a dict lookup plus an add, cheap
enough to leave unconditional — while *export* only happens when the CLI or
a test asks for it, so the default path writes nothing anywhere.

Cross-process aggregation works by value, not by shared memory: a worker
serializes its registry with :meth:`MetricsRegistry.snapshot` (plain JSON),
and the parent folds every worker snapshot into its own registry with
:meth:`MetricsRegistry.merge` — counters and histogram buckets add, gauges
take the maximum (the only merge that is associative, commutative, and
order-independent across workers).  :meth:`MetricsRegistry.exposition`
renders the Prometheus text format, sorted for byte-stable output.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
]

#: Log-scale latency bounds: decades from 1 µs to 100 s (seconds).  A span
#: that outlives the last bound lands in the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 3))

_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool width, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram over log-scale bounds (seconds)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be sorted unique: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            return
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


def _series_key(name: str, labels: Mapping[str, Any]) -> _SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _encode_key(key: _SeriesKey) -> str:
    """JSON-safe string form of a series key, reversible by `_decode_key`."""
    name, labels = key
    return json.dumps([name, list(labels)], sort_keys=False,
                      separators=(",", ":"))


def _decode_key(encoded: str) -> _SeriesKey:
    name, labels = json.loads(encoded)
    return name, tuple((k, v) for k, v in labels)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_series(name: str, labels: Tuple[Tuple[str, str], ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return name
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return f"{name}{{{body}}}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """All metric series of one process, keyed by (name, sorted labels)."""

    def __init__(self) -> None:
        self._counters: Dict[_SeriesKey, Counter] = {}
        self._gauges: Dict[_SeriesKey, Gauge] = {}
        self._histograms: Dict[_SeriesKey, Histogram] = {}
        # Guards series *creation* only: the service increments metrics from
        # HTTP handler threads, the dispatcher, and the reaper concurrently,
        # and two first-touches of the same key must not each insert a
        # metric (the loser's increments would vanish).  Increments on an
        # existing metric stay lock-free — each is a single attribute update.
        self._create_lock = threading.Lock()

    # -- series access (create on first touch) -------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._create_lock:
                metric = self._counters.get(key)
                if metric is None:
                    metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._create_lock:
                metric = self._gauges.get(key)
                if metric is None:
                    metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        bounds: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        key = _series_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._create_lock:
                metric = self._histograms.get(key)
                if metric is None:
                    metric = self._histograms[key] = Histogram(
                        bounds if bounds is not None else DEFAULT_BUCKETS
                    )
        return metric

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter series (0.0 when never touched)."""
        metric = self._counters.get(_series_key(name, labels))
        return metric.value if metric is not None else 0.0

    def reset(self) -> None:
        """Drop every series (fresh process state; used post-fork and in tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- cross-process aggregation -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series, mergeable with :meth:`merge`."""
        return {
            "counters": {
                _encode_key(k): c.value for k, c in self._counters.items()
            },
            "gauges": {
                _encode_key(k): g.value for k, g in self._gauges.items()
            },
            "histograms": {
                _encode_key(k): {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another process's snapshot into this registry.

        Counters and histograms add; gauges keep the maximum.  A histogram
        series whose bucket bounds disagree (snapshot from different code)
        falls back to merging only ``sum``/``count`` into the +Inf bucket —
        data is preserved, never silently dropped.
        """
        for encoded, value in snapshot.get("counters", {}).items():
            name, labels = _decode_key(encoded)
            self.counter(name, **dict(labels)).inc(float(value))
        for encoded, value in snapshot.get("gauges", {}).items():
            name, labels = _decode_key(encoded)
            gauge = self.gauge(name, **dict(labels))
            gauge.set(max(gauge.value, float(value)))
        for encoded, payload in snapshot.get("histograms", {}).items():
            name, labels = _decode_key(encoded)
            bounds = tuple(float(b) for b in payload["bounds"])
            hist = self._histograms.get(_series_key(name, dict(labels)))
            if hist is None:
                hist = self.histogram(name, bounds=bounds, **dict(labels))
            if hist.bounds == bounds:
                for i, c in enumerate(payload["counts"]):
                    hist.counts[i] += int(c)
            else:
                hist.counts[-1] += int(payload["count"])
            hist.sum += float(payload["sum"])
            hist.count += int(payload["count"])

    # -- exposition -----------------------------------------------------------

    def exposition(self) -> str:
        """Prometheus text format, deterministically ordered."""
        lines: List[str] = []
        by_name: Dict[str, List[str]] = {}
        types: Dict[str, str] = {}
        for key, metric in self._counters.items():
            name, labels = key
            types.setdefault(name, "counter")
            by_name.setdefault(name, []).append(
                f"{_format_series(name, labels)} {_format_value(metric.value)}"
            )
        for key, metric in self._gauges.items():
            name, labels = key
            types.setdefault(name, "gauge")
            by_name.setdefault(name, []).append(
                f"{_format_series(name, labels)} {_format_value(metric.value)}"
            )
        for key, hist in self._histograms.items():
            name, labels = key
            types.setdefault(name, "histogram")
            rows = by_name.setdefault(name, [])
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                series = _format_series(
                    f"{name}_bucket", labels, (("le", repr(bound)),)
                )
                rows.append(f"{series} {cumulative}")
            series = _format_series(f"{name}_bucket", labels, (("le", "+Inf"),))
            rows.append(f"{series} {hist.count}")
            rows.append(
                f"{_format_series(name + '_sum', labels)} "
                f"{_format_value(hist.sum)}"
            )
            rows.append(
                f"{_format_series(name + '_count', labels)} {hist.count}"
            )
        for name in sorted(by_name):
            lines.append(f"# TYPE {name} {types[name]}")
            lines.extend(sorted(by_name[name]))
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry every instrumented module increments.
DEFAULT_REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    """Counter series on the default registry."""
    return DEFAULT_REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Gauge series on the default registry."""
    return DEFAULT_REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """Histogram series on the default registry (log-scale latency bounds)."""
    return DEFAULT_REGISTRY.histogram(name, **labels)
