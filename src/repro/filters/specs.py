"""Filter specifications: band shapes, design methods, tolerance schemes.

A :class:`FilterSpec` captures everything the paper's Table 1 lists per
example filter — design method (Butterworth / Parks-McClellan / least
squares), band type (low-pass / band-pass / band-stop), band edges, passband
ripple and stopband attenuation, and the FIR order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from ..errors import FilterDesignError

__all__ = ["BandType", "DesignMethod", "FilterSpec"]


class BandType(str, Enum):
    """Frequency-selective band shape (paper abbreviations in parens)."""

    LOWPASS = "lowpass"      # LP
    HIGHPASS = "highpass"    # HP (not in Table 1 but supported)
    BANDPASS = "bandpass"    # BP
    BANDSTOP = "bandstop"    # BS / notch

    @property
    def abbreviation(self) -> str:
        """The paper's two-letter abbreviation."""
        return {
            "lowpass": "LP",
            "highpass": "HP",
            "bandpass": "BP",
            "bandstop": "BS",
        }[self.value]


class DesignMethod(str, Enum):
    """FIR design algorithm (paper abbreviations in parens)."""

    BUTTERWORTH = "butterworth"        # BW — windowed FIR fit of a Butterworth magnitude
    PARKS_MCCLELLAN = "parks_mcclellan"  # PM — equiripple (Remez exchange)
    LEAST_SQUARES = "least_squares"    # LS — weighted least squares

    @property
    def abbreviation(self) -> str:
        """The paper's two-letter abbreviation."""
        return {
            "butterworth": "BW",
            "parks_mcclellan": "PM",
            "least_squares": "LS",
        }[self.value]


@dataclass(frozen=True)
class FilterSpec:
    """A complete linear-phase FIR specification.

    Frequencies are normalized to the Nyquist rate (1.0 == fs/2).
    ``passband`` and ``stopband`` hold the band edges:

    * low-pass:  ``passband=(0, fp)``, ``stopband=(fs, 1)``
    * high-pass: ``passband=(fp, 1)``, ``stopband=(0, fs)``
    * band-pass: ``passband=(fp1, fp2)``, ``stopband=(fs1, fs2)`` with
      ``fs1 < fp1 < fp2 < fs2`` (stopbands are ``(0, fs1)`` and ``(fs2, 1)``)
    * band-stop: ``passband=(fp1, fp2)`` are the *outer* passband edges and
      ``stopband=(fs1, fs2)`` the notch, with ``fp1 < fs1 < fs2 < fp2``.

    ``ripple_db`` is the peak-to-peak passband ripple R_p; ``atten_db`` the
    minimum stopband attenuation R_s.  ``numtaps`` is odd (Type-I symmetric)
    so every benchmark filter folds cleanly.
    """

    name: str
    band: BandType
    method: DesignMethod
    numtaps: int
    passband: Tuple[float, float]
    stopband: Tuple[float, float]
    ripple_db: float = 0.5
    atten_db: float = 40.0

    def __post_init__(self) -> None:
        if self.numtaps < 3:
            raise FilterDesignError(f"{self.name}: numtaps must be >= 3")
        if self.numtaps % 2 == 0:
            raise FilterDesignError(
                f"{self.name}: numtaps must be odd (Type-I linear phase)"
            )
        for label, band in (("passband", self.passband), ("stopband", self.stopband)):
            lo, hi = band
            if not (0.0 <= lo < hi <= 1.0):
                raise FilterDesignError(
                    f"{self.name}: {label} edges {band} must satisfy 0 <= lo < hi <= 1"
                )
        if self.ripple_db <= 0 or self.atten_db <= 0:
            raise FilterDesignError(f"{self.name}: ripple/attenuation must be positive")
        self._check_band_ordering()

    def _check_band_ordering(self) -> None:
        fp1, fp2 = self.passband
        fs1, fs2 = self.stopband
        if self.band is BandType.LOWPASS and not fp2 < fs1:
            raise FilterDesignError(f"{self.name}: lowpass needs fp < fs")
        if self.band is BandType.HIGHPASS and not fs2 < fp1:
            raise FilterDesignError(f"{self.name}: highpass needs fs < fp")
        if self.band is BandType.BANDPASS and not (fs1 < fp1 < fp2 < fs2):
            raise FilterDesignError(
                f"{self.name}: bandpass needs fs1 < fp1 < fp2 < fs2"
            )
        if self.band is BandType.BANDSTOP and not (fp1 < fs1 < fs2 < fp2):
            raise FilterDesignError(
                f"{self.name}: bandstop needs fp1 < fs1 < fs2 < fp2"
            )

    @property
    def order(self) -> int:
        """FIR filter order (numtaps - 1), as reported in the paper's table."""
        return self.numtaps - 1

    @property
    def passband_delta(self) -> float:
        """Linear passband deviation corresponding to ``ripple_db``."""
        return (10 ** (self.ripple_db / 20.0) - 1) / (10 ** (self.ripple_db / 20.0) + 1)

    @property
    def stopband_delta(self) -> float:
        """Linear stopband deviation corresponding to ``atten_db``."""
        return 10 ** (-self.atten_db / 20.0)

    def describe(self) -> str:
        """One-line Table-1-style summary."""
        return (
            f"{self.name}: {self.method.abbreviation} {self.band.abbreviation} "
            f"order={self.order} pass={self.passband} stop={self.stopband} "
            f"Rp={self.ripple_db}dB Rs={self.atten_db}dB"
        )
