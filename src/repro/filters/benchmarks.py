"""The 12-filter benchmark suite reproducing the paper's Table 1.

The digitized paper preserves each example's *design method* (BW/PM/LS) and
*band type* (LP/BS/BP) but garbles the numeric spec rows (f_p, f_s, R_p, R_s,
order).  Per the reproduction protocol (see DESIGN.md §2) we therefore fix
concrete specs with the preserved method/band per example and orders growing
across the suite so that the SEED sizes after MRP transformation land in the
paper's reported range — (3,6) roots/solution-set for example 1 up to (35,45)
for example 12 at W=16, maximal scaling, depth constraint 3.

All filters are Type-I symmetric so the folded-TDF accounting applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from .design import design_fir
from .specs import BandType, DesignMethod, FilterSpec
from .structures import fold_symmetric

__all__ = ["DesignedFilter", "TABLE1_SPECS", "benchmark_suite", "benchmark_filter"]


@dataclass(frozen=True)
class DesignedFilter:
    """A benchmark spec together with its designed taps and folded half."""

    spec: FilterSpec
    taps: Tuple[float, ...]
    folded: Tuple[float, ...]

    @property
    def name(self) -> str:
        """The benchmark filter's name (from its spec)."""
        return self.spec.name

    @property
    def num_unique_taps(self) -> int:
        """Multiplier count after symmetric folding."""
        return len(self.folded)


def _lp(name: str, method: DesignMethod, numtaps: int, fp: float, fs: float,
        rp: float = 0.5, rs: float = 40.0) -> FilterSpec:
    return FilterSpec(
        name=name, band=BandType.LOWPASS, method=method, numtaps=numtaps,
        passband=(0.0, fp), stopband=(fs, 1.0), ripple_db=rp, atten_db=rs,
    )


def _bs(name: str, method: DesignMethod, numtaps: int,
        edges: Tuple[float, float, float, float],
        rp: float = 0.5, rs: float = 40.0) -> FilterSpec:
    fp1, fs1, fs2, fp2 = edges
    return FilterSpec(
        name=name, band=BandType.BANDSTOP, method=method, numtaps=numtaps,
        passband=(fp1, fp2), stopband=(fs1, fs2), ripple_db=rp, atten_db=rs,
    )


def _bp(name: str, method: DesignMethod, numtaps: int,
        edges: Tuple[float, float, float, float],
        rp: float = 0.5, rs: float = 40.0) -> FilterSpec:
    fs1, fp1, fp2, fs2 = edges
    return FilterSpec(
        name=name, band=BandType.BANDPASS, method=method, numtaps=numtaps,
        passband=(fp1, fp2), stopband=(fs1, fs2), ripple_db=rp, atten_db=rs,
    )


_BW = DesignMethod.BUTTERWORTH
_PM = DesignMethod.PARKS_MCCLELLAN
_LS = DesignMethod.LEAST_SQUARES

# Method and band sequences exactly as Table 1 lists them:
#   methods: BW PM LS BW PM LS PM PM LS LS PM LS
#   bands:   LP LP LP LP BS BS BS LP BS LP BP BP
TABLE1_SPECS: List[FilterSpec] = [
    _lp("ex01", _BW, 15, 0.20, 0.45, rp=4.5, rs=15.0),
    _lp("ex02", _PM, 25, 0.22, 0.38, rp=0.5, rs=40.0),
    _lp("ex03", _LS, 41, 0.20, 0.30, rp=0.6, rs=33.0),
    _lp("ex04", _BW, 33, 0.25, 0.42, rp=5.5, rs=27.0),
    _bs("ex05", _PM, 45, (0.18, 0.30, 0.52, 0.64), rp=0.5, rs=45.0),
    _bs("ex06", _LS, 53, (0.22, 0.32, 0.55, 0.66), rp=0.4, rs=48.0),
    _bs("ex07", _PM, 61, (0.25, 0.34, 0.52, 0.62), rp=0.3, rs=50.0),
    _lp("ex08", _PM, 57, 0.15, 0.22, rp=0.5, rs=46.0),
    _bs("ex09", _LS, 49, (0.20, 0.31, 0.56, 0.68), rp=0.4, rs=46.0),
    _lp("ex10", _LS, 51, 0.18, 0.26, rp=0.6, rs=30.0),
    _bp("ex11", _PM, 79, (0.22, 0.32, 0.55, 0.66), rp=0.3, rs=52.0),
    _bp("ex12", _LS, 71, (0.20, 0.30, 0.52, 0.63), rp=0.3, rs=50.0),
]


# Keyed on the (frozen, hashable) spec itself rather than a positional index:
# the design depends on nothing else, so an edited/substituted TABLE1_SPECS
# entry can never be served a stale result designed for the old spec.
@lru_cache(maxsize=None)
def _design_cached(spec: FilterSpec) -> DesignedFilter:
    taps = design_fir(spec)
    folded, _ = fold_symmetric(taps)
    return DesignedFilter(
        spec=spec,
        taps=tuple(float(t) for t in taps),
        folded=tuple(float(t) for t in folded),
    )


def benchmark_filter(index: int) -> DesignedFilter:
    """Return benchmark filter ``index`` (0-based), designed and folded."""
    if not 0 <= index < len(TABLE1_SPECS):
        raise IndexError(f"benchmark index {index} out of range 0..{len(TABLE1_SPECS) - 1}")
    return _design_cached(TABLE1_SPECS[index])


def benchmark_suite() -> List[DesignedFilter]:
    """Design (once, cached) and return the whole 12-filter suite."""
    return [benchmark_filter(i) for i in range(len(TABLE1_SPECS))]
