"""Frequency-response measurement and specification checking.

Used to (a) sanity-check designed filters, (b) verify that quantization at a
given word length has not destroyed the response, and (c) drive the
word-length search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import signal

from .specs import BandType, FilterSpec

__all__ = ["ResponseReport", "frequency_response", "measure_response", "meets_spec"]


@dataclass(frozen=True)
class ResponseReport:
    """Measured response quality of a tap vector against a spec."""

    passband_ripple_db: float
    stopband_atten_db: float

    def satisfies(self, spec: FilterSpec, margin_db: float = 0.0) -> bool:
        """True if measured ripple/attenuation meet the spec with ``margin_db``."""
        return (
            self.passband_ripple_db <= spec.ripple_db + margin_db
            and self.stopband_atten_db >= spec.atten_db - margin_db
        )


def frequency_response(
    taps: Sequence[float], num_points: int = 2048
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (frequencies normalized to Nyquist, complex response)."""
    freqs, response = signal.freqz(np.asarray(list(taps), dtype=float), worN=num_points)
    return freqs / np.pi, response


def _band_masks(spec: FilterSpec, freqs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Boolean masks selecting the passband(s) and stopband(s) of the grid."""
    fp1, fp2 = spec.passband
    fs1, fs2 = spec.stopband
    if spec.band is BandType.LOWPASS:
        passband = freqs <= fp2
        stopband = freqs >= fs1
    elif spec.band is BandType.HIGHPASS:
        passband = freqs >= fp1
        stopband = freqs <= fs2
    elif spec.band is BandType.BANDPASS:
        passband = (freqs >= fp1) & (freqs <= fp2)
        stopband = (freqs <= fs1) | (freqs >= fs2)
    else:  # BANDSTOP
        passband = (freqs <= fp1) | (freqs >= fp2)
        stopband = (freqs >= fs1) & (freqs <= fs2)
    return passband, stopband


def measure_response(
    taps: Sequence[float], spec: FilterSpec, num_points: int = 2048
) -> ResponseReport:
    """Measure peak-to-peak passband ripple and minimum stopband attenuation.

    The filter is first normalized so its mean passband gain is unity —
    coefficient scaling (uniform or maximal) changes the absolute gain, which
    must not register as a spec violation.
    """
    freqs, response = frequency_response(taps, num_points)
    magnitude = np.abs(response)
    passband, stopband = _band_masks(spec, freqs)
    pass_mag = magnitude[passband]
    stop_mag = magnitude[stopband]
    gain = float(np.mean(pass_mag)) if pass_mag.size else 1.0
    if gain <= 0.0:
        return ResponseReport(passband_ripple_db=float("inf"), stopband_atten_db=0.0)
    pass_mag = pass_mag / gain
    stop_mag = stop_mag / gain
    # Peak-to-peak ripple in dB across the passband.
    ripple_db = float(
        20.0 * np.log10(np.max(pass_mag) / max(np.min(pass_mag), 1e-12))
    )
    atten_db = float(-20.0 * np.log10(max(np.max(stop_mag), 1e-12)))
    return ResponseReport(passband_ripple_db=ripple_db, stopband_atten_db=atten_db)


def meets_spec(
    taps: Sequence[float], spec: FilterSpec, margin_db: float = 0.0
) -> bool:
    """Convenience wrapper: measure and compare against the spec."""
    return measure_response(taps, spec).satisfies(spec, margin_db)
