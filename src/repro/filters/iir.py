"""IIR filter support — the paper's §1 claim applied.

The paper notes MRP "can be directly applied to any application which can be
expressed as a vector scaling operation ... like transposed direct form IIR
filters".  A TDF-II IIR section multiplies the input ``x(n)`` by the
numerator vector *and* the output ``y(n)`` by the denominator vector — two
vector scaling operations that MRP can optimize jointly (one shared SEED
network per multiplicand).

This module provides IIR design (Butterworth/Chebyshev via scipy), joint
quantization of ``b``/``a``, and an exact rational-arithmetic TDF-II
simulator used to verify synthesized multiplierless IIR structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

import numpy as np
from scipy import signal

from ..errors import FilterDesignError, QuantizationError

__all__ = [
    "IirSpec",
    "QuantizedIir",
    "design_iir",
    "quantize_iir",
    "iir_direct_output",
    "iir_tdf2_output",
]


@dataclass(frozen=True)
class IirSpec:
    """A classical IIR low/high/band-pass/stop specification.

    Frequencies normalized to Nyquist == 1, like :class:`FilterSpec`.
    """

    name: str
    btype: str              # "lowpass" | "highpass" | "bandpass" | "bandstop"
    order: int
    cutoff: Tuple[float, ...]
    design: str = "butter"  # "butter" | "cheby1"
    ripple_db: float = 1.0  # cheby1 passband ripple

    def __post_init__(self) -> None:
        if self.btype not in ("lowpass", "highpass", "bandpass", "bandstop"):
            raise FilterDesignError(f"{self.name}: unknown btype {self.btype!r}")
        if self.order < 1:
            raise FilterDesignError(f"{self.name}: order must be >= 1")
        if self.design not in ("butter", "cheby1"):
            raise FilterDesignError(f"{self.name}: unknown design {self.design!r}")
        for f in self.cutoff:
            if not 0.0 < f < 1.0:
                raise FilterDesignError(f"{self.name}: cutoff {f} out of (0, 1)")


def design_iir(spec: IirSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Design ``(b, a)`` transfer-function coefficients for the spec."""
    wn = spec.cutoff if len(spec.cutoff) > 1 else spec.cutoff[0]
    if spec.design == "butter":
        b, a = signal.butter(spec.order, wn, btype=spec.btype, fs=2.0)
    else:
        b, a = signal.cheby1(spec.order, spec.ripple_db, wn,
                             btype=spec.btype, fs=2.0)
    return np.atleast_1d(b), np.atleast_1d(a)


@dataclass(frozen=True)
class QuantizedIir:
    """Fixed-point image of an IIR transfer function.

    ``b_int / 2**b_frac`` and ``a_int / 2**a_frac`` approximate the float
    coefficients; ``a_int[0]`` is the (power-of-two) leading denominator term
    so the recursion needs no true division.
    """

    b_int: Tuple[int, ...]
    a_int: Tuple[int, ...]
    b_frac: int
    a_frac: int

    @property
    def all_integers(self) -> Tuple[int, ...]:
        """The joint coefficient vector MRP optimizes over."""
        return tuple(self.b_int) + tuple(self.a_int[1:])


def quantize_iir(
    b: Sequence[float], a: Sequence[float], wordlength: int
) -> QuantizedIir:
    """Quantize ``b`` and ``a`` to fixed point with power-of-two scaling.

    The coefficients are normalized so ``a[0] == 1`` and then scaled by the
    largest power of two keeping every integer within ``wordlength`` bits —
    making the leading denominator coefficient an exact power of two, so the
    feedback divide is a wire shift.
    """
    b = np.asarray(list(b), dtype=float)
    a = np.asarray(list(a), dtype=float)
    if a.size == 0 or a[0] == 0.0:
        raise QuantizationError("IIR denominator must have a nonzero a[0]")
    b = b / a[0]
    a = a / a[0]
    limit = (1 << (wordlength - 1)) - 1

    def fit(vec: np.ndarray) -> Tuple[Tuple[int, ...], int]:
        peak = float(np.max(np.abs(vec)))
        if peak == 0.0:
            raise QuantizationError("coefficient vector is identically zero")
        frac = 0
        while (round(peak * (1 << (frac + 1)))) <= limit:
            frac += 1
        return tuple(int(round(v * (1 << frac))) for v in vec), frac

    b_int, b_frac = fit(b)
    a_int, a_frac = fit(a)
    return QuantizedIir(b_int=b_int, a_int=a_int, b_frac=b_frac, a_frac=a_frac)


def iir_direct_output(
    b: Sequence, a: Sequence, samples: Sequence
) -> List[Fraction]:
    """Exact rational IIR recursion ``a0 y(n) = sum b_i x - sum a_j y``."""
    b = [Fraction(v) for v in b]
    a = [Fraction(v) for v in a]
    out: List[Fraction] = []
    for n in range(len(samples)):
        acc = Fraction(0)
        for i, bi in enumerate(b):
            if n - i >= 0:
                acc += bi * Fraction(samples[n - i])
        for j in range(1, len(a)):
            if n - j >= 0:
                acc -= a[j] * out[n - j]
        out.append(acc / a[0])
    return out


def iir_tdf2_output(
    b: Sequence, a: Sequence, samples: Sequence
) -> List[Fraction]:
    """Cycle-accurate transposed direct form II simulation (exact rationals).

    ``y(n) = (b0 x(n) + r0) / a0``; registers update as
    ``r_k = b_{k+1} x - a_{k+1} y + r_{k+1}``.  Must equal the direct
    recursion — the structural identity the tests enforce.
    """
    b = [Fraction(v) for v in b]
    a = [Fraction(v) for v in a]
    order = max(len(b), len(a)) - 1
    b = b + [Fraction(0)] * (order + 1 - len(b))
    a = a + [Fraction(0)] * (order + 1 - len(a))
    registers = [Fraction(0)] * order
    out: List[Fraction] = []
    for x in samples:
        xf = Fraction(x)
        y = (b[0] * xf + (registers[0] if registers else 0)) / a[0]
        for k in range(order):
            incoming = registers[k + 1] if k + 1 < order else Fraction(0)
            registers[k] = b[k + 1] * xf - a[k + 1] * y + incoming
        out.append(y)
    return out
