"""FIR filter substrate: specs, design backends, responses, structures, suite."""

from .benchmarks import (
    TABLE1_SPECS,
    DesignedFilter,
    benchmark_filter,
    benchmark_suite,
)
from .design import design_fir, firls_bands, remez_bands
from .iir import (
    IirSpec,
    QuantizedIir,
    design_iir,
    iir_direct_output,
    iir_tdf2_output,
    quantize_iir,
)
from .response import ResponseReport, frequency_response, measure_response, meets_spec
from .specs import BandType, DesignMethod, FilterSpec
from .structures import (
    TransposedDirectForm,
    direct_form_output,
    fold_symmetric,
    is_symmetric,
    transposed_direct_form_output,
    unfold_symmetric,
)

__all__ = [
    "BandType",
    "DesignMethod",
    "DesignedFilter",
    "FilterSpec",
    "IirSpec",
    "QuantizedIir",
    "ResponseReport",
    "TABLE1_SPECS",
    "TransposedDirectForm",
    "benchmark_filter",
    "benchmark_suite",
    "design_fir",
    "design_iir",
    "direct_form_output",
    "firls_bands",
    "fold_symmetric",
    "frequency_response",
    "iir_direct_output",
    "iir_tdf2_output",
    "is_symmetric",
    "measure_response",
    "meets_spec",
    "quantize_iir",
    "remez_bands",
    "transposed_direct_form_output",
    "unfold_symmetric",
]
