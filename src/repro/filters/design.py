"""Linear-phase FIR design backends: Parks-McClellan, least squares, Butterworth fit.

Every backend returns a symmetric (Type-I) tap vector for a
:class:`~repro.filters.specs.FilterSpec`.  These are the "BW", "PM" and "LS"
columns of the paper's Table 1.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import signal

from ..errors import FilterDesignError
from .specs import BandType, DesignMethod, FilterSpec

__all__ = ["design_fir", "remez_bands", "firls_bands"]

# A hair of separation keeps degenerate bands away from DC/Nyquist in the
# Remez exchange when a spec edge sits exactly on 0 or 1.
_EDGE_EPS = 1e-6


def remez_bands(spec: FilterSpec) -> Tuple[List[float], List[float], List[float]]:
    """Build (band edges, desired gains, weights) for :func:`scipy.signal.remez`.

    Edges are normalized to Nyquist == 1 (we call remez with ``fs=2``).
    Weights follow the standard delta-ratio rule so the equiripple solution
    splits the error budget according to R_p and R_s.
    """
    wp = 1.0 / spec.passband_delta
    ws = 1.0 / spec.stopband_delta
    fp1, fp2 = spec.passband
    fs1, fs2 = spec.stopband
    if spec.band is BandType.LOWPASS:
        bands = [0.0, fp2, fs1, 1.0]
        desired = [1.0, 0.0]
        weights = [wp, ws]
    elif spec.band is BandType.HIGHPASS:
        bands = [0.0, fs2, fp1, 1.0]
        desired = [0.0, 1.0]
        weights = [ws, wp]
    elif spec.band is BandType.BANDPASS:
        bands = [0.0, fs1, fp1, fp2, fs2, 1.0]
        desired = [0.0, 1.0, 0.0]
        weights = [ws, wp, ws]
    elif spec.band is BandType.BANDSTOP:
        bands = [0.0, fp1, fs1, fs2, fp2, 1.0]
        desired = [1.0, 0.0, 1.0]
        weights = [wp, ws, wp]
    else:  # pragma: no cover - enum is exhaustive
        raise FilterDesignError(f"unsupported band {spec.band}")
    bands[0] = max(bands[0], 0.0)
    bands[-1] = min(bands[-1], 1.0 - _EDGE_EPS)
    return bands, desired, weights


def firls_bands(spec: FilterSpec) -> Tuple[List[float], List[float], List[float]]:
    """Build (bands, desired-at-edges, band weights) for :func:`scipy.signal.firls`."""
    bands, desired, weights = remez_bands(spec)
    # firls wants the desired gain at *both* edges of each band.
    desired_pairs: List[float] = []
    for gain in desired:
        desired_pairs.extend([gain, gain])
    return bands, desired_pairs, weights


def _design_parks_mcclellan(spec: FilterSpec) -> np.ndarray:
    bands, desired, weights = remez_bands(spec)
    return signal.remez(spec.numtaps, bands, desired, weight=weights, fs=2.0)


def _design_least_squares(spec: FilterSpec) -> np.ndarray:
    bands, desired, weights = firls_bands(spec)
    return signal.firls(spec.numtaps, bands, desired, weight=weights, fs=2.0)


def _butterworth_magnitude(spec: FilterSpec, grid: np.ndarray) -> np.ndarray:
    """Sampled magnitude of the IIR Butterworth meeting the spec."""
    fp1, fp2 = spec.passband
    fs1, fs2 = spec.stopband
    if spec.band is BandType.LOWPASS:
        wp: object = fp2
        ws: object = fs1
        btype = "lowpass"
    elif spec.band is BandType.HIGHPASS:
        wp, ws, btype = fp1, fs2, "highpass"
    elif spec.band is BandType.BANDPASS:
        wp, ws, btype = [fp1, fp2], [fs1, fs2], "bandpass"
    else:
        wp, ws, btype = [fp1, fp2], [fs1, fs2], "bandstop"
    order, wn = signal.buttord(wp, ws, spec.ripple_db, spec.atten_db, fs=2.0)
    # Very sharp specs can demand huge IIR orders; cap for numerical sanity.
    order = min(order, 16)
    sos = signal.butter(order, wn, btype=btype, output="sos", fs=2.0)
    _, response = signal.sosfreqz(sos, worN=grid * np.pi)
    return np.abs(response)


def _design_butterworth_fir(spec: FilterSpec) -> np.ndarray:
    """Linear-phase FIR matching a Butterworth magnitude response.

    The paper's "BW" filters are Butterworth designs realized as symmetric
    FIR taps; we sample the Butterworth magnitude on a dense grid and fit it
    with :func:`scipy.signal.firwin2` (frequency-sampling + window), which
    yields exactly symmetric coefficients.
    """
    grid = np.linspace(0.0, 1.0, 512)
    gains = _butterworth_magnitude(spec, grid)
    gains[0] = gains[0] if spec.band not in (BandType.HIGHPASS, BandType.BANDPASS) else 0.0
    gains[-1] = 0.0 if spec.band in (BandType.LOWPASS, BandType.BANDPASS) else gains[-1]
    return signal.firwin2(spec.numtaps, grid, gains, fs=2.0)


_BACKENDS = {
    DesignMethod.PARKS_MCCLELLAN: _design_parks_mcclellan,
    DesignMethod.LEAST_SQUARES: _design_least_squares,
    DesignMethod.BUTTERWORTH: _design_butterworth_fir,
}


def design_fir(spec: FilterSpec) -> np.ndarray:
    """Design the FIR taps for ``spec`` with its chosen method.

    Returns a length-``spec.numtaps`` symmetric float array.  Raises
    :class:`FilterDesignError` if the backend fails or produces a
    non-symmetric result (which would break the folded TDF assumption).
    """
    backend = _BACKENDS[spec.method]
    try:
        taps = np.asarray(backend(spec), dtype=float)
    except Exception as exc:  # scipy raises plain ValueErrors
        raise FilterDesignError(f"{spec.name}: design failed: {exc}") from exc
    if taps.shape != (spec.numtaps,):
        raise FilterDesignError(
            f"{spec.name}: backend returned {taps.shape}, expected ({spec.numtaps},)"
        )
    if not np.allclose(taps, taps[::-1], atol=1e-9 * max(1.0, np.max(np.abs(taps)))):
        raise FilterDesignError(f"{spec.name}: design is not symmetric")
    if not np.all(np.isfinite(taps)):
        raise FilterDesignError(f"{spec.name}: design contains non-finite taps")
    return taps
