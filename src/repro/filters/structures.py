"""FIR filter structures: direct form, transposed direct form, symmetric folding.

The paper targets the *transposed direct form* (TDF), where the single input
sample ``x(n)`` multiplies the whole coefficient vector at once — the vector
scaling view that makes computation sharing possible.  This module provides
golden-model simulations of the structures (float and exact integer) used to
validate synthesized shift-add architectures, plus symmetric folding.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import FilterDesignError

__all__ = [
    "is_symmetric",
    "fold_symmetric",
    "unfold_symmetric",
    "direct_form_output",
    "transposed_direct_form_output",
    "TransposedDirectForm",
]


def is_symmetric(taps: Sequence[float], rel_tol: float = 1e-9) -> bool:
    """True if the tap vector has even (Type-I/II) linear-phase symmetry."""
    arr = np.asarray(list(taps), dtype=float)
    if arr.size == 0:
        return False
    scale = max(1.0, float(np.max(np.abs(arr))))
    return bool(np.allclose(arr, arr[::-1], atol=rel_tol * scale))


def fold_symmetric(taps: Sequence[float]) -> Tuple[np.ndarray, int]:
    """Fold a symmetric tap vector to its unique half.

    Returns ``(unique, numtaps)`` where ``unique`` holds taps
    ``0 .. ceil(numtaps/2) - 1``.  The folded structure pre-adds the mirrored
    delay-line samples, so only these coefficients need multipliers — the
    accounting the paper uses for all methods alike.  Raises if the input is
    not symmetric.
    """
    arr = np.asarray(list(taps), dtype=float)
    if not is_symmetric(arr):
        raise FilterDesignError("cannot fold a non-symmetric tap vector")
    half = (arr.size + 1) // 2
    return arr[:half].copy(), int(arr.size)


def unfold_symmetric(unique: Sequence[float], numtaps: int) -> np.ndarray:
    """Inverse of :func:`fold_symmetric`."""
    unique_arr = np.asarray(list(unique), dtype=float)
    half = (numtaps + 1) // 2
    if unique_arr.size != half:
        raise FilterDesignError(
            f"folded vector has {unique_arr.size} taps, expected {half} for numtaps={numtaps}"
        )
    if numtaps % 2 == 1:
        return np.concatenate([unique_arr, unique_arr[:-1][::-1]])
    return np.concatenate([unique_arr, unique_arr[::-1]])


def direct_form_output(taps: Sequence, samples: Sequence) -> List:
    """Direct-form FIR output: ``y(n) = sum_i c_i x(n-i)`` with zero history.

    Works on ints exactly (Python bignums) and on floats; output length equals
    the input length (no tail), matching ``numpy.convolve(...)[:len(x)]``.
    """
    taps = list(taps)
    samples = list(samples)
    output = []
    for n in range(len(samples)):
        acc = 0
        for i, c in enumerate(taps):
            if n - i < 0:
                break
            acc += c * samples[n - i]
        output.append(acc)
    return output


def transposed_direct_form_output(taps: Sequence, samples: Sequence) -> List:
    """Cycle-accurate TDF register simulation.

    The TDF keeps ``M-1`` registers; each cycle every tap product of the
    *current* sample is formed and folded into the register chain:
    ``r_k(n) = c_{k+1} x(n) + r_{k+1}(n-1)``, ``y(n) = c_0 x(n) + r_0(n-1)``.
    Must agree exactly with :func:`direct_form_output` — a structural identity
    the tests enforce.
    """
    taps = list(taps)
    samples = list(samples)
    m = len(taps)
    registers = [0] * max(0, m - 1)
    output = []
    for x in samples:
        products = [c * x for c in taps]
        y = products[0] + (registers[0] if registers else 0)
        for k in range(len(registers)):
            incoming = registers[k + 1] if k + 1 < len(registers) else 0
            registers[k] = products[k + 1] + incoming
        output.append(y)
    return output


class TransposedDirectForm:
    """Stateful TDF engine for streaming use (examples, pipelining demos)."""

    def __init__(self, taps: Sequence):
        self._taps = list(taps)
        if not self._taps:
            raise FilterDesignError("TDF needs at least one tap")
        self._registers = [0] * (len(self._taps) - 1)

    @property
    def taps(self) -> List:
        """Copy of the tap vector."""
        return list(self._taps)

    def reset(self) -> None:
        """Clear the register chain."""
        self._registers = [0] * (len(self._taps) - 1)

    def step(self, sample):
        """Process one input sample, return one output sample."""
        products = [c * sample for c in self._taps]
        y = products[0] + (self._registers[0] if self._registers else 0)
        for k in range(len(self._registers)):
            incoming = (
                self._registers[k + 1] if k + 1 < len(self._registers) else 0
            )
            self._registers[k] = products[k + 1] + incoming
        return y

    def process(self, samples: Sequence) -> List:
        """Process a block of samples."""
        return [self.step(x) for x in samples]
