"""Batch construction of the SIDC colored multigraph.

Equivalent to :func:`repro.graph.colored._build_edges` — same edges, same
fields, same order — but restructured for speed:

* the per-edge CSD re-encoding is replaced by the popcount digit-cost
  kernels of :mod:`repro.fastpath.digitcost`;
* ``oddpart``'s trial division becomes the two's-complement trailing-zero
  trick ``mag & -mag``;
* color costs are collected during the single edge pass (the reference
  recomputes ``digit_cost`` once more per distinct color);
* the :class:`~repro.graph.colored.ColoredGraph` index dictionaries are
  built inline, skipping the reference's second full pass over the edge
  list, and edges skip ``__post_init__`` re-validation (the construction
  *is* the reconstruction identity, so there is nothing to re-check);
* with a capable numpy, the SID coefficients, shifts, and weights of all
  ``2 * (max_shift + 1) * M * (M - 1)`` edges are computed by int64
  broadcasting first, leaving python only the object materialization.

Edge order is bit-for-bit the reference order (src, dst, shift, sign) so
downstream tie-breaking — and therefore every exported artifact — is
unchanged.  ``tests/test_fastpath_equivalence.py`` locks this down.

The cooperative ``budget`` is charged once per ordered vertex pair exactly
like the reference.  The numpy kernel performs its bulk arithmetic before
the first checkpoint, so an exhausted budget still raises, merely after the
(cheap, vectorized) arithmetic instead of before it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..errors import GraphError
from ..numrep import Representation
from .digitcost import fast_cost_fn

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..graph.colored import ColoredGraph
    from ..robust.budget import SolverBudget

__all__ = ["build_graph_fast"]

#: Values at or above this bound leave the numpy int64 comfort zone
#: (``3 * xi`` must not overflow); the builder silently drops to the
#: pure-python kernel, which works on arbitrary-precision ints.
_NUMPY_VALUE_BOUND = 1 << 60


def build_graph_fast(
    vertex_list: List[int],
    max_shift: int,
    representation: Representation,
    budget: Optional["SolverBudget"],
    kernel: str,
) -> "ColoredGraph":
    """Build the full SIDC graph with the requested fast kernel.

    ``vertex_list`` must be sorted, deduplicated odd positive integers —
    the same precondition the reference path enforces, checked here up
    front so a bad vertex fails before any bulk work.
    """
    for v in vertex_list:
        if v <= 0 or v % 2 == 0:
            raise GraphError(f"vertex {v} must be odd and positive")
    use_numpy = kernel == "numpy" and len(vertex_list) >= 2 and (
        (max(vertex_list) << max_shift) + max(vertex_list) < _NUMPY_VALUE_BOUND
    )
    if use_numpy:
        return _build_numpy(vertex_list, max_shift, representation, budget)
    return _build_python(vertex_list, max_shift, representation, budget)


def _graph_state(vertex_list):
    """The five index dictionaries a ColoredGraph is made of, empty."""
    return (
        {},  # edges_by_color: color -> [ColorEdge]
        {},  # color_sets: color -> {dst}
        {v: set() for v in vertex_list},  # colors_of_vertex
        {v: {} for v in vertex_list},  # edges_into_by_color
        {},  # color_costs: color -> digit cost
    )


def _assemble(vertex_list, representation, max_shift, state) -> "ColoredGraph":
    from ..graph.colored import ColoredGraph

    by_color, sets, of_vertex, into, costs = state
    return ColoredGraph._from_prebuilt(
        vertex_list, representation, max_shift, by_color, sets, of_vertex,
        into, costs,
    )


def _build_python(
    vertex_list: List[int],
    max_shift: int,
    representation: Representation,
    budget: Optional["SolverBudget"],
) -> "ColoredGraph":
    """Fused single-pass pure-python kernel over precomputed shift tables."""
    from ..graph.colored import ColorEdge

    cost = fast_cost_fn(representation)
    state = _graph_state(vertex_list)
    by_color, sets, of_vertex, into, costs = state
    new_edge = object.__new__
    shift_range = range(max_shift + 1)
    for src in vertex_list:
        shifted_tab = [src << s for s in shift_range]
        for dst in vertex_list:
            if dst == src:
                continue
            if budget is not None:
                budget.spend()
            dst_colors = of_vertex[dst]
            dst_into = into[dst]
            for shift in shift_range:
                shifted = shifted_tab[shift]
                for src_sign in (1, -1):
                    xi = dst - shifted if src_sign == 1 else dst + shifted
                    if xi == 0:
                        continue
                    if xi > 0:
                        color_sign, magnitude = 1, xi
                    else:
                        color_sign, magnitude = -1, -xi
                    color_shift = (magnitude & -magnitude).bit_length() - 1
                    primary = magnitude >> color_shift
                    edge = new_edge(ColorEdge)
                    edge.__dict__.update(
                        src=src, dst=dst, shift=shift, src_sign=src_sign,
                        color=primary, color_shift=color_shift,
                        color_sign=color_sign, weight=0,
                    )
                    bucket = by_color.get(primary)
                    if bucket is None:
                        weight = cost(primary)
                        by_color[primary] = [edge]
                        sets[primary] = {dst}
                        costs[primary] = weight
                    else:
                        weight = costs[primary]
                        bucket.append(edge)
                        sets[primary].add(dst)
                    edge.__dict__["weight"] = weight
                    dst_colors.add(primary)
                    into_bucket = dst_into.get(primary)
                    if into_bucket is None:
                        dst_into[primary] = [edge]
                    else:
                        into_bucket.append(edge)
    return _assemble(vertex_list, representation, max_shift, state)


def _build_numpy(
    vertex_list: List[int],
    max_shift: int,
    representation: Representation,
    budget: Optional["SolverBudget"],
) -> "ColoredGraph":
    """Vectorized kernel: int64 broadcast arithmetic, python materialization.

    Shapes are ``(M, M, S, 2)`` indexed ``[src][dst][shift][sign]`` with
    sign index 0 for ``src_sign=+1`` and 1 for ``-1``, matching the
    reference iteration order exactly when walked in C order.
    """
    import numpy as np

    from ..graph.colored import ColorEdge

    v = np.asarray(vertex_list, dtype=np.int64)
    shifts = np.arange(max_shift + 1, dtype=np.int64)
    shifted = v[:, None] << shifts[None, :]  # (M, S)
    base = v[None, :, None]  # broadcasts over (M, M, S)
    xi_plus = base - shifted[:, None, :]
    xi_minus = base + shifted[:, None, :]
    xi = np.stack((xi_plus, xi_minus), axis=-1)  # (M, M, S, 2)
    magnitude = np.abs(xi)
    low_bit = magnitude & -magnitude
    # popcount(low_bit - 1) == count of trailing zeros; the where() keeps the
    # shift count defined at the (masked-out) xi == 0 entries.
    color_shift = np.bitwise_count(
        np.where(magnitude == 0, np.int64(1), low_bit) - 1
    ).astype(np.int64)
    primary = magnitude >> color_shift
    if representation is Representation.CSD:
        weight = np.bitwise_count(primary ^ (3 * primary))
    else:
        weight = np.bitwise_count(primary)
    # Bulk-convert to flat python lists once (C order == reference iteration
    # order), then walk them with one running index; per-element numpy
    # scalar extraction or nested-list hopping inside the loop would dwarf
    # the arithmetic saved.
    primaries = primary.ravel().tolist()
    color_shifts = color_shift.ravel().tolist()
    weights = weight.astype(np.int64).ravel().tolist()
    color_signs = np.where(xi < 0, -1, 1).ravel().tolist()

    state = _graph_state(vertex_list)
    by_color, sets, of_vertex, into, costs = state
    new_edge = object.__new__
    num_vertices = len(vertex_list)
    per_pair = 2 * (max_shift + 1)  # flat stride of one (src, dst) pair
    shift_range = range(max_shift + 1)
    for i, src in enumerate(vertex_list):
        row_start = i * num_vertices * per_pair
        for j, dst in enumerate(vertex_list):
            if dst == src:
                continue
            if budget is not None:
                budget.spend()
            dst_colors = of_vertex[dst]
            dst_into = into[dst]
            index = row_start + j * per_pair
            for shift in shift_range:
                for src_sign in (1, -1):
                    prim = primaries[index]
                    if prim == 0:  # xi == 0: dst is a shift of src
                        index += 1
                        continue
                    edge = new_edge(ColorEdge)
                    edge.__dict__.update(
                        src=src, dst=dst, shift=shift, src_sign=src_sign,
                        color=prim, color_shift=color_shifts[index],
                        color_sign=color_signs[index], weight=weights[index],
                    )
                    bucket = by_color.get(prim)
                    if bucket is None:
                        by_color[prim] = [edge]
                        sets[prim] = {dst}
                        costs[prim] = weights[index]
                    else:
                        bucket.append(edge)
                        sets[prim].add(dst)
                    dst_colors.add(prim)
                    into_bucket = dst_into.get(prim)
                    if into_bucket is None:
                        dst_into[prim] = [edge]
                    else:
                        into_bucket.append(edge)
                    index += 1
    return _assemble(vertex_list, representation, max_shift, state)
