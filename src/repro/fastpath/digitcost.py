"""Branch-free digit-cost kernels, equivalent to :mod:`repro.numrep.cost`.

The reference ``digit_cost`` builds a full :class:`~repro.numrep.SignedDigits`
string per call (carry recoding, dataclass validation, digit trimming) only to
count its nonzero entries.  The graph build calls it once per edge *and* once
per color, which makes it the single hottest function of a synthesis run.

Both representations admit a closed popcount form:

* **CSD/SPT** — by Reitwiesner's classical result, the nonzero digits of the
  non-adjacent form of ``n >= 0`` sit exactly at the set bits of
  ``n XOR 3n``, so the CSD digit count is ``popcount(n ^ 3n)``.  CSD encoding
  of a negative value is the digit-wise negation of its magnitude's encoding,
  so ``abs`` first preserves the count.
* **SM (sign-magnitude)** — plain binary magnitude: ``popcount(abs(n))``.

``tests/test_fastpath_equivalence.py`` cross-checks both identities against
the reference encoders over wide hypothesis ranges and exhaustively on small
values.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..numrep.cost import Representation

__all__ = ["csd_cost_fast", "fast_cost_fn", "popcount", "sm_cost_fast"]

try:  # int.bit_count landed in 3.10; the package still supports 3.9
    _BIT_COUNT = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9

    def _BIT_COUNT(value: int) -> int:
        return bin(value).count("1")


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    return _BIT_COUNT(value)


def csd_cost_fast(value: int) -> int:
    """Nonzero digits of the CSD encoding of ``value`` (popcount identity)."""
    magnitude = abs(value)
    return _BIT_COUNT(magnitude ^ (3 * magnitude))


def sm_cost_fast(value: int) -> int:
    """Nonzero digits of the sign-magnitude encoding: ``popcount(abs(n))``."""
    return _BIT_COUNT(abs(value))


_FAST_COST: Dict[Representation, Callable[[int], int]] = {
    Representation.CSD: csd_cost_fast,
    Representation.SM: sm_cost_fast,
}


def fast_cost_fn(representation: Representation) -> Callable[[int], int]:
    """The fast digit-cost function for ``representation``.

    Guaranteed (and property-tested) to agree with
    :func:`repro.numrep.digit_cost` on every integer.
    """
    return _FAST_COST[representation]
