"""Snapshot / restore / warm helpers for the process-local MSD digit table.

The table itself lives in :mod:`repro.numrep.msd` (module-level, so every
caller of :func:`~repro.numrep.enumerate_msd` shares it).  This module gives
the sweep engines a way to hand a warmed table to pool workers: on Linux the
fork start method inherits it for free, but a snapshot threaded through the
pool initializer makes the warmth explicit, picklable, and start-method
independent.

Snapshots are plain nested tuples of ints (no custom classes), so they cross
process boundaries cheaply and never drag module state along.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "clear_tables",
    "restore_tables",
    "table_snapshot",
    "table_stats",
    "warm_msd_tables",
]

#: Snapshot ceiling: a sweep's coefficient population is a few hundred
#: values; anything beyond this is a runaway caller, not a sweep.
MAX_SNAPSHOT_ENTRIES = 4096

#: One snapshot entry: (value, max_width, encodings-as-digit-tuples).
SnapshotEntry = Tuple[int, int, Tuple[Tuple[int, ...], ...]]


def table_snapshot(
    max_entries: int = MAX_SNAPSHOT_ENTRIES,
) -> Tuple[SnapshotEntry, ...]:
    """Picklable copy of the current process's MSD table (possibly truncated).

    Entries are emitted in insertion order, so truncation keeps the oldest —
    i.e. the most-reused — enumerations.
    """
    from ..numrep import msd

    entries = []
    for (value, max_width), encodings in msd._TABLE.items():
        if len(entries) >= max_entries:
            break
        entries.append(
            (value, max_width, tuple(e.digits for e in encodings))
        )
    return tuple(entries)


def restore_tables(snapshot: Optional[Sequence[SnapshotEntry]]) -> int:
    """Merge a snapshot into this process's MSD table; returns entries added.

    Existing entries win (they were computed here and are therefore already
    trusted); restoring is purely additive so a worker can layer the parent's
    snapshot under whatever it computes afterwards.
    """
    if not snapshot:
        return 0
    from ..numrep import msd
    from ..numrep.digits import SignedDigits

    added = 0
    for value, max_width, digit_tuples in snapshot:
        key = (int(value), int(max_width))
        if key in msd._TABLE:
            continue
        msd._TABLE[key] = tuple(
            SignedDigits(tuple(digits)) for digits in digit_tuples
        )
        added += 1
    return added


def warm_msd_tables(values: Iterable[int]) -> int:
    """Enumerate (and therefore cache) the MSD sets of ``values``.

    Returns the number of *new* table entries.  Used by benchmarks and by
    callers that know their coefficient population up front.
    """
    from ..numrep import msd

    before = len(msd._TABLE)
    for value in set(values):
        msd.enumerate_msd(int(value))
    return len(msd._TABLE) - before


def table_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the process-local MSD table."""
    from ..numrep import msd

    return {
        "entries": len(msd._TABLE),
        "hits": msd._TABLE_STATS["hits"],
        "misses": msd._TABLE_STATS["misses"],
    }


def clear_tables() -> None:
    """Drop every cached enumeration and zero the counters (tests, benches)."""
    from ..numrep import msd

    msd._TABLE.clear()
    msd._TABLE_STATS["hits"] = 0
    msd._TABLE_STATS["misses"] = 0
