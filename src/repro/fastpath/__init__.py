"""Fast-path synthesis kernels: vectorized graph build and memoized tables.

The synthesis hot path spends almost all of its time in two places (see
``benchmarks/results/BENCH_sweep_baseline.json``): constructing the SIDC
colored multigraph (per-edge CSD re-encoding dominates) and re-running the
recursive MSD enumeration for coefficients that repeat across a sweep.  This
package provides drop-in fast kernels for both:

* :mod:`repro.fastpath.digitcost` — branch-free digit-cost functions
  (``popcount``-identity CSD weights) used per edge instead of building a
  :class:`~repro.numrep.SignedDigits` string per color.
* :mod:`repro.fastpath.graphbuild` — a batch rewrite of the colored-graph
  inner loops over precomputed shift tables, with an optional numpy kernel
  (int64 broadcasting + ``np.bitwise_count``) and a pure-python fallback.
* :mod:`repro.fastpath.msdtables` — snapshot/restore/warm helpers around the
  process-local MSD digit table kept by :mod:`repro.numrep.msd`, so sweep
  workers inherit the parent's warmed tables at fork (or via the pool
  initializer under spawn).

Every kernel is provably equivalent to the reference implementation it
replaces — ``tests/test_fastpath_equivalence.py`` asserts element-identical
edge sets and enumerations under hypothesis, and byte-identical sweep
exports — and the reference code paths remain in place, selectable at
runtime.

Mode selection
--------------

The ``REPRO_FASTPATH`` environment variable picks the kernel:

``auto`` (default)
    numpy kernel when a capable numpy is importable, else pure python.
``numpy``
    force the numpy kernel (falls back to python if numpy is unusable).
``python``
    force the pure-python fast kernel (how CI exercises the fallback).
``off``
    disable every fast path; run the original reference implementations.

:func:`set_mode` overrides the environment for the current process (used by
tests, benchmarks, and the CLI ``--fastpath`` flag).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "KERNEL_VERSION",
    "MODES",
    "fastpath_info",
    "graph_kernel",
    "msd_tables_enabled",
    "numpy_usable",
    "resolve_mode",
    "set_mode",
]

#: Bump when a fast kernel's output could have differed from the reference
#: (i.e. an equivalence bug was fixed).  Folded into the disk-cache version
#: tag so results computed by a buggy kernel are orphaned at once.
KERNEL_VERSION = 1

MODES = ("auto", "numpy", "python", "off")

#: Process-local override installed by :func:`set_mode`; ``None`` defers to
#: the environment.
_MODE_OVERRIDE: Optional[str] = None

#: Memoized result of the numpy capability probe (``None`` = not probed).
_NUMPY_USABLE: Optional[bool] = None


def numpy_usable() -> bool:
    """True when numpy is importable and has the int64 ops the kernel needs.

    The numpy graph kernel requires ``np.bitwise_count`` (numpy >= 2.0) for
    exact integer popcounts; an older numpy is treated as absent rather than
    risking an inexact float detour.
    """
    global _NUMPY_USABLE
    if _NUMPY_USABLE is None:
        try:
            import numpy as np

            _NUMPY_USABLE = hasattr(np, "bitwise_count")
        except ImportError:
            _NUMPY_USABLE = False
    return _NUMPY_USABLE


def set_mode(mode: Optional[str]) -> None:
    """Override the fast-path mode for this process (``None`` = environment).

    Raises ``ValueError`` for an unknown mode so a typo in a test or CLI flag
    fails loudly instead of silently running the wrong kernel.
    """
    global _MODE_OVERRIDE
    if mode is not None and mode not in MODES:
        raise ValueError(f"unknown fastpath mode {mode!r}; choose from {MODES}")
    _MODE_OVERRIDE = mode


def resolve_mode() -> str:
    """The requested mode: override, then ``REPRO_FASTPATH``, then ``auto``."""
    if _MODE_OVERRIDE is not None:
        return _MODE_OVERRIDE
    raw = os.environ.get("REPRO_FASTPATH", "auto").strip().lower()
    return raw if raw in MODES else "auto"


def graph_kernel() -> str:
    """The effective graph-build kernel: ``numpy``, ``python``, or ``off``."""
    mode = resolve_mode()
    if mode == "off":
        return "off"
    if mode == "python":
        return "python"
    # auto and numpy both prefer numpy when it is actually usable.
    return "numpy" if numpy_usable() else "python"


def msd_tables_enabled() -> bool:
    """Whether MSD enumerations are served from the process-local table."""
    return resolve_mode() != "off"


def fastpath_info() -> Dict[str, object]:
    """JSON-friendly snapshot of the fast-path configuration and table state."""
    from .msdtables import table_stats

    return {
        "mode": resolve_mode(),
        "graph_kernel": graph_kernel(),
        "msd_tables": msd_tables_enabled(),
        "numpy_usable": numpy_usable(),
        "kernel_version": KERNEL_VERSION,
        "msd_table": table_stats(),
    }
