"""Plain binary (unsigned-magnitude) digit encoding.

This backs the paper's *sign-magnitude* (SM) representation: the magnitude is
encoded in ordinary base-2 with digits in {0, 1}; the sign lives outside the
digit string (in hardware it flips the tap adder to a subtractor at zero extra
cost, exactly as in the paper's overhead-add network).
"""

from __future__ import annotations

from .digits import SignedDigits

__all__ = ["encode_binary", "binary_nonzero_count", "binary_width"]


def encode_binary(value: int) -> SignedDigits:
    """Encode ``abs(value)`` in plain binary, negating digits if negative.

    The returned string's value equals ``value`` exactly; for a negative input
    every digit is ``-1`` where the magnitude has a ``1``.  The nonzero-digit
    count therefore equals ``popcount(abs(value))`` for either sign.
    """
    magnitude = abs(value)
    digits = []
    while magnitude:
        digits.append(magnitude & 1)
        magnitude >>= 1
    if value < 0:
        digits = [-d for d in digits]
    return SignedDigits(tuple(digits))


def binary_nonzero_count(value: int) -> int:
    """``popcount(abs(value))`` — the SM digit cost of ``value``."""
    return bin(abs(value)).count("1")


def binary_width(value: int) -> int:
    """Number of bits needed for ``abs(value)`` (0 for value 0)."""
    return abs(value).bit_length()
