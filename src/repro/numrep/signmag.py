"""Sign-magnitude (SM) representation — thin wrapper over plain binary.

The paper evaluates MRP under both SPT (CSD) and SM digits; SM costs are
simply popcounts of the magnitude, so the whole representation reduces to
:mod:`repro.numrep.binary` plus an explicit sign accessor kept for API
symmetry with the CSD side.
"""

from __future__ import annotations

from typing import Tuple

from .binary import binary_nonzero_count, encode_binary
from .digits import SignedDigits

__all__ = ["encode_sign_magnitude", "sm_nonzero_count", "split_sign_magnitude"]


def encode_sign_magnitude(value: int) -> SignedDigits:
    """Encode ``value`` as a signed binary-magnitude digit string."""
    return encode_binary(value)


def sm_nonzero_count(value: int) -> int:
    """Digit cost of ``value`` under sign-magnitude: ``popcount(|value|)``."""
    return binary_nonzero_count(value)


def split_sign_magnitude(value: int) -> Tuple[int, int]:
    """Return ``(sign, magnitude)`` with ``sign in {-1, 0, 1}``."""
    if value == 0:
        return 0, 0
    return (1 if value > 0 else -1), abs(value)
