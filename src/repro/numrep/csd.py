"""Canonical signed digit (CSD) encoding.

CSD is the canonical member of the signed-powers-of-two (SPT) family used by
the paper: digits in {-1, 0, +1}, no two adjacent digits nonzero, and the
minimum possible number of nonzero digits among all signed-digit encodings of
the value.  On average a ``W``-bit value has ``W/3`` nonzero CSD digits versus
``W/2`` binary ones, which is why multiplierless filter synthesis starts here.
"""

from __future__ import annotations

from .digits import SignedDigits

__all__ = ["encode_csd", "csd_nonzero_count", "is_csd"]


def encode_csd(value: int) -> SignedDigits:
    """Return the unique CSD encoding of ``value``.

    Uses the classical carry recoding: scanning LSB to MSB, a run of ones
    ``0111...1`` is rewritten as ``100...0N`` (``N`` = -1).  Works for negative
    values by encoding the magnitude and negating the digits, which preserves
    canonicality (CSD of ``-n`` is the digit-wise negation of CSD of ``n``).
    """
    if value == 0:
        return SignedDigits(())
    negative = value < 0
    n = abs(value)
    digits = []
    while n:
        if n & 1:
            # Remainder mod 4 decides whether this position becomes +1 or -1.
            d = 2 - (n & 3)  # n % 4 == 1 -> +1 ; n % 4 == 3 -> -1
            n -= d
        else:
            d = 0
        digits.append(d)
        n >>= 1
    if negative:
        digits = [-d for d in digits]
    return SignedDigits(tuple(digits))


def csd_nonzero_count(value: int) -> int:
    """Number of nonzero digits in the CSD encoding of ``value``."""
    return encode_csd(value).nonzero_count


def is_csd(digits: SignedDigits) -> bool:
    """True if the digit string satisfies the CSD adjacency property."""
    return not digits.has_adjacent_nonzeros()
