"""Digit-cost metrics parameterized by number representation.

The MRP benefit function and every complexity figure in the paper boil down
to two quantities per constant ``v``:

* ``digit_cost(v)`` — nonzero digits in the chosen representation.  This is
  the paper's edge weight / color *cost* (number of adder arrays when an
  array multiplier realizes the product).
* ``adder_cost(v)`` — adders needed to multiply a variable by ``v`` with a
  bare shift-add chain: one fewer than the digit count (the first partial
  product is a wire), and zero for ``v in {0, ±2**k}``.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict

from .binary import binary_nonzero_count, encode_binary
from .csd import csd_nonzero_count, encode_csd
from .digits import SignedDigits

__all__ = ["Representation", "digit_cost", "adder_cost", "encode"]


class Representation(str, Enum):
    """Coefficient digit representations considered by the paper.

    ``CSD`` doubles as the paper's "SPT" (canonical signed powers of two);
    ``SM`` is sign-magnitude, i.e. plain binary magnitude with an external
    sign.  The string values make CLI/bench parametrization readable.
    """

    CSD = "csd"
    SM = "sm"

    @property
    def label(self) -> str:
        """Human-readable name of the representation."""
        return {"csd": "CSD/SPT", "sm": "sign-magnitude"}[self.value]


_DIGIT_COST: Dict[Representation, Callable[[int], int]] = {
    Representation.CSD: csd_nonzero_count,
    Representation.SM: binary_nonzero_count,
}

_ENCODER: Dict[Representation, Callable[[int], SignedDigits]] = {
    Representation.CSD: encode_csd,
    Representation.SM: encode_binary,
}


def encode(value: int, representation: Representation = Representation.CSD) -> SignedDigits:
    """Encode ``value`` in the given representation."""
    return _ENCODER[representation](value)


def digit_cost(value: int, representation: Representation = Representation.CSD) -> int:
    """Nonzero digit count of ``value`` in the given representation."""
    return _DIGIT_COST[representation](value)


def adder_cost(value: int, representation: Representation = Representation.CSD) -> int:
    """Adders to form ``value * x`` from ``x`` by a plain shift-add chain."""
    return max(0, digit_cost(value, representation) - 1)
