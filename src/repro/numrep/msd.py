"""Minimal signed digit (MSD) enumeration.

A value usually has *several* signed-digit encodings that achieve the minimal
nonzero-digit count; CSD is merely the canonical one.  Enumerating all of them
widens the pattern space for common-subexpression elimination (Park & Kang,
DAC 2001) and gives an independent oracle for the CSD minimality property
tests.  The enumeration is exact and memoized; it is intended for the modest
word lengths of filter coefficients (<= 24 bits), not for bignums.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..obs import span as obs_span
from .digits import SignedDigits

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = ["minimal_nonzero_count", "enumerate_msd", "msd_count"]

#: Process-local digit table: ``(value, max_width) -> tuple(SignedDigits)``.
#: A sweep enumerates the same coefficient odd-parts over and over (every
#: wordlength and scaling revisits many of them); the table turns each repeat
#: into a dict hit instead of a recursive search.  Managed (snapshot for
#: worker handoff, warm, clear) by :mod:`repro.fastpath.msdtables`; disabled
#: entirely by ``REPRO_FASTPATH=off`` so the reference search stays
#: A/B-benchmarkable.
_TABLE: Dict[Tuple[int, int], Tuple[SignedDigits, ...]] = {}
_TABLE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


@lru_cache(maxsize=None)
def minimal_nonzero_count(value: int) -> int:
    """Minimum nonzero digits over all signed-digit encodings of ``value``.

    Computed by the standard recurrence on the odd part: an odd ``n`` must end
    in +1 or -1, so ``cost(n) = 1 + min(cost(n-1), cost(n+1))`` with the even
    successors reduced by right-shifting.  Equals the CSD digit count — the
    tests cross-check the two implementations against each other.
    """
    value = abs(value)
    if value == 0:
        return 0
    while value % 2 == 0:
        value //= 2
    if value == 1:
        return 1
    return 1 + min(
        minimal_nonzero_count(value - 1),
        minimal_nonzero_count(value + 1),
    )


def enumerate_msd(
    value: int,
    max_width: int | None = None,
    budget: Optional["SolverBudget"] = None,
) -> List[SignedDigits]:
    """Enumerate every minimal signed-digit encoding of ``value``.

    ``max_width`` bounds the digit positions considered; by default one digit
    beyond the binary width of the value (CSD never needs more).  The result
    is sorted by string form for determinism and always contains the CSD
    encoding of the value.  The optional cooperative ``budget`` is charged one
    unit per enumeration node and raises
    :class:`~repro.errors.BudgetExceeded` on exhaustion.
    """
    if value == 0:
        return [SignedDigits(())]
    if max_width is None:
        max_width = abs(value).bit_length() + 1
    from ..fastpath import msd_tables_enabled

    memoize = msd_tables_enabled()
    if memoize:
        cached = _TABLE.get((value, max_width))
        if cached is not None:
            _TABLE_STATS["hits"] += 1
            if budget is not None:
                # A table hit still charges one unit so budget semantics
                # (deadline checkpoints included) are warmth-independent.
                budget.spend()
            return list(cached)
    target_cost = minimal_nonzero_count(value)
    results: List[Tuple[int, ...]] = []
    with obs_span("msd.enumerate", value=value, max_width=max_width):
        _search(value, 0, max_width, target_cost, (), results, budget)
        encodings = sorted({SignedDigits(r) for r in results}, key=str)
        if memoize:
            _TABLE_STATS["misses"] += 1
            _TABLE[(value, max_width)] = tuple(encodings)
        return list(encodings)


def msd_count(value: int) -> int:
    """Number of distinct minimal signed-digit encodings of ``value``."""
    return len(enumerate_msd(value))


def _search(
    remaining: int,
    position: int,
    max_width: int,
    digits_left: int,
    prefix: Tuple[int, ...],
    results: List[Tuple[int, ...]],
    budget: Optional["SolverBudget"] = None,
) -> None:
    """Depth-first enumeration of digit choices at ``position``.

    ``remaining`` is the value still to be represented by positions
    ``>= position`` divided by ``2**position`` — i.e. we peel one digit per
    level and halve.  ``digits_left`` is the number of nonzero digits we may
    still spend while staying minimal.
    """
    if budget is not None:
        budget.spend()
    if remaining == 0:
        if digits_left == 0:
            results.append(prefix)
        return
    if position >= max_width or digits_left == 0:
        return
    # A digit d at this position leaves (remaining - d) / 2 for higher ones.
    if remaining % 2 == 0:
        choices = (0,)
    else:
        choices = (1, -1)
    for d in choices:
        rest = (remaining - d) // 2
        cost = 1 if d else 0
        # Prune: the remainder needs at least its own minimal digit count.
        if cost <= digits_left and minimal_nonzero_count(rest) <= digits_left - cost:
            _search(rest, position + 1, max_width, digits_left - cost,
                    prefix + (d,), results, budget)
