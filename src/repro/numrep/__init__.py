"""Number representations: signed digits, binary/SM, CSD/SPT, MSD.

This subpackage is the arithmetic foundation for everything above it: the
color costs of the MRP graph, the CSE pattern space, and the simple-baseline
adder counts all come from the digit encodings defined here.
"""

from .binary import binary_nonzero_count, binary_width, encode_binary
from .cost import Representation, adder_cost, digit_cost, encode
from .csd import csd_nonzero_count, encode_csd, is_csd
from .digits import (
    SignedDigits,
    is_power_of_two,
    odd_normalize,
    oddpart,
    shift_amount,
)
from .msd import enumerate_msd, minimal_nonzero_count, msd_count
from .signmag import encode_sign_magnitude, sm_nonzero_count, split_sign_magnitude

__all__ = [
    "SignedDigits",
    "Representation",
    "adder_cost",
    "binary_nonzero_count",
    "binary_width",
    "csd_nonzero_count",
    "digit_cost",
    "encode",
    "encode_binary",
    "encode_csd",
    "encode_sign_magnitude",
    "enumerate_msd",
    "is_csd",
    "is_power_of_two",
    "minimal_nonzero_count",
    "msd_count",
    "odd_normalize",
    "oddpart",
    "shift_amount",
    "sm_nonzero_count",
    "split_sign_magnitude",
]
