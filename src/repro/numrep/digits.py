"""Signed-digit strings — the common currency of all number representations.

Every representation used in the paper (two's-complement binary interpreted as
sign-magnitude, SPT/CSD, minimal signed digit) is a string of digits
``d_k in {-1, 0, +1}`` with value ``sum(d_k * 2**k)``.  This module provides an
immutable :class:`SignedDigits` container plus the small integer helpers
(odd part, shift amount) that the MRP color machinery relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from ..errors import EncodingError

__all__ = [
    "SignedDigits",
    "oddpart",
    "shift_amount",
    "odd_normalize",
    "is_power_of_two",
]


def oddpart(n: int) -> int:
    """Return the odd factor of ``n`` (``n == oddpart(n) << shift_amount(n)``).

    ``oddpart(0)`` is defined as ``0``.  The sign of ``n`` is preserved::

        >>> oddpart(24)
        3
        >>> oddpart(-40)
        -5
    """
    if n == 0:
        return 0
    while n % 2 == 0:
        n //= 2
    return n


def shift_amount(n: int) -> int:
    """Return ``k`` such that ``n == oddpart(n) << k`` (0 for ``n == 0``)."""
    if n == 0:
        return 0
    k = 0
    while n % 2 == 0:
        n //= 2
        k += 1
    return k


def odd_normalize(n: int) -> Tuple[int, int]:
    """Return ``(odd, k)`` with ``n == odd << k`` and ``odd`` odd (or zero)."""
    return oddpart(n), shift_amount(n)


def is_power_of_two(n: int) -> bool:
    """True if ``abs(n)`` is a power of two (1, 2, 4, ...).  False for 0."""
    n = abs(n)
    return n != 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class SignedDigits:
    """An immutable signed-digit string, least-significant digit first.

    ``digits[k]`` is the digit weighting ``2**k``; each digit must be one of
    ``-1, 0, +1``.  Trailing (most-significant) zeros are stripped on
    construction so equal values in the same representation compare equal.
    """

    digits: Tuple[int, ...]

    def __post_init__(self) -> None:
        for d in self.digits:
            if d not in (-1, 0, 1):
                raise EncodingError(f"invalid signed digit {d!r}")
        trimmed = _trim(self.digits)
        object.__setattr__(self, "digits", trimmed)

    @classmethod
    def from_iterable(cls, digits: Iterable[int]) -> "SignedDigits":
        """Build from any iterable of digits (LSB first)."""
        return cls(tuple(digits))

    @property
    def value(self) -> int:
        """The integer value ``sum(d_k * 2**k)``."""
        return sum(d << k for k, d in enumerate(self.digits))

    @property
    def width(self) -> int:
        """Number of digit positions up to the most significant nonzero."""
        return len(self.digits)

    @property
    def nonzero_count(self) -> int:
        """Number of nonzero digits — the paper's resource *cost* of a color."""
        return sum(1 for d in self.digits if d != 0)

    @property
    def nonzero_positions(self) -> Tuple[int, ...]:
        """Positions (powers of two) carrying a nonzero digit, ascending."""
        return tuple(k for k, d in enumerate(self.digits) if d != 0)

    @property
    def terms(self) -> Tuple[Tuple[int, int], ...]:
        """``(position, digit)`` pairs for the nonzero digits, ascending."""
        return tuple((k, d) for k, d in enumerate(self.digits) if d != 0)

    def shifted(self, k: int) -> "SignedDigits":
        """Return ``self * 2**k`` (``k >= 0``) as a new digit string."""
        if k < 0:
            raise EncodingError("negative shift would drop digits")
        return SignedDigits((0,) * k + self.digits)

    def negated(self) -> "SignedDigits":
        """Return the digit-wise negation (value multiplied by -1)."""
        return SignedDigits(tuple(-d for d in self.digits))

    def has_adjacent_nonzeros(self) -> bool:
        """True if two neighbouring positions are both nonzero.

        CSD strings never do; plain binary strings frequently do.
        """
        return any(
            self.digits[k] != 0 and self.digits[k + 1] != 0
            for k in range(len(self.digits) - 1)
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self.digits)

    def __len__(self) -> int:
        return len(self.digits)

    def __str__(self) -> str:
        # MSB-first, using the conventional CSD glyphs: 1, 0, and N for -1.
        if not self.digits:
            return "0"
        glyphs = {1: "1", 0: "0", -1: "N"}
        return "".join(glyphs[d] for d in reversed(self.digits))


def _trim(digits: Tuple[int, ...]) -> Tuple[int, ...]:
    """Strip most-significant zeros (the tuple is LSB first)."""
    end = len(digits)
    while end > 0 and digits[end - 1] == 0:
        end -= 1
    return digits[:end]
