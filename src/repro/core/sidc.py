"""Shift-inclusive differential coefficients: tap normalization (paper steps 1-2).

Before the graph is built, the integer tap vector is reduced to its *primary
coefficients*:

* zero taps need no hardware at all;
* taps whose magnitude is a power of two are pure wires (shift + sign);
* every other tap is ``sign * (vertex << shift)`` for an odd ``vertex > 1`` —
  the paper's step 2 keeps only these odd representatives, since secondary
  coefficients (shifts of a primary) cost nothing extra.

The :class:`TapBinding` records how each original tap is recovered from its
vertex, which the netlist builder later turns into output wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..numrep import odd_normalize

__all__ = ["TapBinding", "normalize_taps"]


@dataclass(frozen=True)
class TapBinding:
    """Recovery recipe for one tap: ``coefficient = sign * (base << shift)``.

    ``vertex`` is the odd magnitude > 1 that must be computed by the MRP
    network, or ``None`` when the tap is free (zero, or ±2**shift where the
    base is the input itself).
    """

    index: int
    coefficient: int
    vertex: Optional[int]
    shift: int
    sign: int

    def __post_init__(self) -> None:
        base = self.vertex if self.vertex is not None else (1 if self.sign else 0)
        if self.sign * (base << self.shift) != self.coefficient:
            raise GraphError(
                f"tap {self.index}: {self.sign}*({base}<<{self.shift}) "
                f"!= {self.coefficient}"
            )

    @property
    def is_zero(self) -> bool:
        """True for a zero tap (no hardware at all)."""
        return self.sign == 0

    @property
    def is_free(self) -> bool:
        """True if the tap costs no adders (zero or a power of two)."""
        return self.vertex is None


def normalize_taps(coefficients: Sequence[int]) -> Tuple[List[int], List[TapBinding]]:
    """Split integer taps into the vertex set and per-tap recovery bindings.

    Returns ``(vertices, bindings)`` where ``vertices`` is the sorted list of
    unique odd magnitudes > 1 (the graph's vertex set) and ``bindings`` has
    one entry per input tap in order.
    """
    vertices = set()
    bindings: List[TapBinding] = []
    for index, coefficient in enumerate(coefficients):
        coefficient = int(coefficient)
        if coefficient == 0:
            bindings.append(
                TapBinding(index=index, coefficient=0, vertex=None, shift=0, sign=0)
            )
            continue
        sign = 1 if coefficient > 0 else -1
        odd, shift = odd_normalize(abs(coefficient))
        if odd == 1:
            bindings.append(
                TapBinding(
                    index=index, coefficient=coefficient, vertex=None,
                    shift=shift, sign=sign,
                )
            )
            continue
        vertices.add(odd)
        bindings.append(
            TapBinding(
                index=index, coefficient=coefficient, vertex=odd,
                shift=shift, sign=sign,
            )
        )
    return sorted(vertices), bindings
