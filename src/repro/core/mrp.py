"""Stage A of the MRP algorithm (paper §3.4): cover + forest = the MRP plan.

Given integer filter coefficients this module runs the complete optimization
pipeline of the paper:

1. normalize taps to primary coefficients (vertices) — :mod:`repro.core.sidc`;
2. build the SIDC colored graph with shifts ``L in 0..max_shift``;
3. greedily solve the weighted minimum set cover with the benefit function
   ``f = beta*frequency - (1-beta)*cost``;
4. extract a depth-bounded spanning forest (roots via APSP eccentricity);
5. assemble the **SEED set** = spanning-tree roots ∪ solution colors.

The result — an :class:`MrpPlan` — is a pure *architectural* description;
:mod:`repro.core.transform` lowers it to a shift-add netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from ..errors import SynthesisError

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget
from ..graph import (
    ColoredGraph,
    CoverSolution,
    SpanningForest,
    TreeAssignment,
    build_colored_graph,
    build_spanning_forest,
    greedy_weighted_set_cover,
)
from ..numrep import Representation, adder_cost
from .sidc import TapBinding, normalize_taps

__all__ = ["MrpOptions", "MrpPlan", "optimize", "trivial_plan"]


@dataclass(frozen=True)
class MrpOptions:
    """Tuning knobs of the MRP optimization.

    ``beta`` weights coverage against color cost in the benefit function
    (0.5 = interconnect-neutral, the paper's default reading).  ``max_shift``
    is the SIDC shift range ``L`` — ``None`` means "use the coefficient
    wordlength", the paper's ``0 <= L <= W``; 0 degenerates to the pure
    differential-coefficient method of Muhammad & Roy [5].  ``depth_limit``
    bounds spanning-tree height (Table 1 uses 3); ``None`` leaves it
    unbounded.  ``strategy`` selects the greedy score: ``"benefit"`` is the
    paper's β-form; ``"savings"`` is this library's exact adder-savings
    extension (β is then ignored).
    """

    beta: float = 0.5
    max_shift: Optional[int] = None
    representation: Representation = Representation.CSD
    depth_limit: Optional[int] = None
    strategy: str = "benefit"

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise SynthesisError(f"beta must be in [0, 1], got {self.beta}")
        if self.strategy not in ("benefit", "savings"):
            raise SynthesisError(f"unknown cover strategy {self.strategy!r}")
        if self.max_shift is not None and self.max_shift < 0:
            raise SynthesisError(f"max_shift must be >= 0, got {self.max_shift}")
        if self.depth_limit is not None and self.depth_limit < 1:
            raise SynthesisError(f"depth_limit must be >= 1, got {self.depth_limit}")


@dataclass(frozen=True)
class MrpPlan:
    """The complete output of MRP stage A for one coefficient vector."""

    coefficients: Tuple[int, ...]
    options: MrpOptions
    bindings: Tuple[TapBinding, ...]
    vertices: Tuple[int, ...]
    graph: Optional[ColoredGraph] = field(repr=False, default=None)
    cover: Optional[CoverSolution] = field(repr=False, default=None)
    forest: Optional[SpanningForest] = None

    @property
    def solution_colors(self) -> Tuple[int, ...]:
        """Primary colors picked by the greedy cover, in selection order."""
        if self.cover is None:
            return ()
        return tuple(self.cover.colors)

    @property
    def roots(self) -> Tuple[int, ...]:
        """Spanning-forest roots (directly multiplied coefficients)."""
        if self.forest is None:
            return ()
        return self.forest.roots

    @property
    def used_colors(self) -> Tuple[int, ...]:
        """Solution colors actually consumed by the forest.

        A color can win a greedy round yet end up unused when every vertex it
        covered is later attached through a cheaper edge, becomes a root, or
        is an alias.  Only used colors need SEED multipliers; Table 1's
        ``solution set`` column reports the raw cover size instead.
        """
        if self.forest is None:
            return ()
        used = {a.edge.color for a in self.forest.children}
        used.update(self.forest.aliases)
        return tuple(sorted(used))

    @property
    def seed(self) -> Tuple[int, ...]:
        """SEED set = roots ∪ used solution colors (paper §3.5), sorted."""
        return tuple(sorted(set(self.roots) | set(self.used_colors)))

    @property
    def seed_size(self) -> Tuple[int, int]:
        """Table-1 style ``(num_roots, num_solution_colors)``."""
        return len(self.roots), len(self.solution_colors)

    @property
    def overhead_adders(self) -> int:
        """Adders in the overhead add network (one per non-root tree vertex)."""
        return self.forest.overhead_adders if self.forest is not None else 0

    @property
    def seed_multiplication_adders(self) -> int:
        """Adders to multiply the input by each SEED constant, no sharing.

        This is the *uncompressed* SEED network size; CSE or recursive MRP
        can lower it further (paper §4).
        """
        rep = self.options.representation
        return sum(adder_cost(value, rep) for value in self.seed)

    @property
    def total_adders(self) -> int:
        """Multiplier-block adders of the plain MRPF architecture."""
        return self.seed_multiplication_adders + self.overhead_adders

    @property
    def tree_height(self) -> int:
        """Maximum spanning-tree depth (bounds the overhead-network delay)."""
        return self.forest.max_depth if self.forest is not None else 0

    def describe(self) -> str:
        """Multi-line human-readable summary of the plan."""
        lines = [
            f"MRP plan for {len(self.coefficients)} taps "
            f"({len(self.vertices)} primary coefficients)",
            f"  solution colors ({len(self.solution_colors)}): "
            f"{list(self.solution_colors)}",
            f"  roots ({len(self.roots)}): {list(self.roots)}",
            f"  SEED size (roots, solution) = {self.seed_size}",
            f"  adders: seed={self.seed_multiplication_adders} "
            f"overhead={self.overhead_adders} total={self.total_adders}",
            f"  tree height: {self.tree_height}",
        ]
        return "\n".join(lines)


def optimize(
    coefficients: Sequence[int],
    wordlength: int,
    options: Optional[MrpOptions] = None,
    graph: Optional[ColoredGraph] = None,
    budget: Optional["SolverBudget"] = None,
    cover_fn: Optional[Callable[..., CoverSolution]] = None,
) -> MrpPlan:
    """Run MRP stage A on integer taps quantized to ``wordlength`` bits.

    ``wordlength`` sets the default SIDC shift range (``L <= W``, paper §3.1)
    when ``options.max_shift`` is ``None``.  A prebuilt ``graph`` over the
    same vertex set / shift range / representation may be supplied to avoid
    rebuilding it across β sweeps; it is validated before use.

    ``budget`` is an optional cooperative :class:`~repro.robust.SolverBudget`
    threaded into the cover solver (and checkpointed around the graph build)
    so an oversized instance raises :class:`~repro.errors.BudgetExceeded`
    instead of hanging.  ``cover_fn`` swaps the greedy cover for another
    solver — the robust degradation layer uses it to try the exact
    branch-and-bound first; it is called as
    ``cover_fn(universe, sets, costs, options)`` and must return a
    :class:`~repro.graph.CoverSolution`.
    """
    opts = options or MrpOptions()
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot optimize an empty coefficient vector")
    if wordlength < 1:
        raise SynthesisError(f"wordlength must be >= 1, got {wordlength}")
    max_shift = opts.max_shift if opts.max_shift is not None else wordlength

    vertices, bindings = normalize_taps(coefficients)
    if not vertices:
        # Every tap is zero or a power of two: nothing to optimize.
        return MrpPlan(
            coefficients=coefficients,
            options=opts,
            bindings=tuple(bindings),
            vertices=(),
            forest=SpanningForest(assignments=()),
        )
    if len(vertices) == 1:
        # A single primary coefficient is its own root; no colors needed.
        forest = SpanningForest(
            assignments=(
                TreeAssignment(vertex=vertices[0], kind="root", depth=0),
            )
        )
        return MrpPlan(
            coefficients=coefficients,
            options=opts,
            bindings=tuple(bindings),
            vertices=tuple(vertices),
            forest=forest,
        )

    if graph is None:
        graph = build_colored_graph(
            vertices, max_shift, opts.representation, budget=budget
        )
    elif (
        set(graph.vertices) != set(vertices)
        or graph.max_shift != max_shift
        or graph.representation != opts.representation
    ):
        raise SynthesisError(
            "supplied graph does not match the coefficients/options "
            f"(vertices/max_shift/representation mismatch)"
        )
    color_sets = {color: graph.color_set(color) for color in graph.colors}
    costs = {color: float(graph.color_cost(color)) for color in graph.colors}
    element_weights = None
    if opts.strategy == "savings":
        # Covering vertex v replaces its direct digit chain with one overhead
        # adder, saving adder_cost(v) - 1; weight the cover accordingly.
        element_weights = {
            v: max(0.0, adder_cost(v, opts.representation) - 1.0)
            for v in vertices
        }
    if budget is not None:
        budget.checkpoint()
    if cover_fn is not None:
        cover = cover_fn(set(vertices), color_sets, costs, opts)
    else:
        cover = greedy_weighted_set_cover(
            set(vertices), color_sets, costs, beta=opts.beta,
            element_weights=element_weights, strategy=opts.strategy,
            budget=budget,
        )
    if budget is not None:
        budget.checkpoint()
    forest = build_spanning_forest(
        graph, cover.colors, depth_limit=opts.depth_limit
    )
    return MrpPlan(
        coefficients=coefficients,
        options=opts,
        bindings=tuple(bindings),
        vertices=tuple(vertices),
        graph=graph,
        cover=cover,
        forest=forest,
    )


def trivial_plan(
    coefficients: Sequence[int],
    options: Optional[MrpOptions] = None,
) -> MrpPlan:
    """The no-sharing MRP plan: every primary coefficient is its own root.

    Lowering this plan reproduces the simple implementation (with fundamental
    reuse), so it serves as a guaranteed floor — sweeping β and falling back
    to the trivial plan makes "MRPF never loses to simple" a hard invariant
    (used by :func:`repro.eval.best_mrpf`).
    """
    opts = options or MrpOptions()
    coefficients = tuple(int(c) for c in coefficients)
    if not coefficients:
        raise SynthesisError("cannot plan an empty coefficient vector")
    vertices, bindings = normalize_taps(coefficients)
    forest = SpanningForest(
        assignments=tuple(
            TreeAssignment(vertex=v, kind="root", depth=0) for v in vertices
        )
    )
    return MrpPlan(
        coefficients=coefficients,
        options=opts,
        bindings=tuple(bindings),
        vertices=tuple(vertices),
        forest=forest,
    )
