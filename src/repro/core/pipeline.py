"""Pipelining the MRPF architecture (paper §4, "a natural place to pipeline").

Unlike an irregular CSE network, the MRPF structure has clean boundaries —
SEED multiplication network | overhead add network | TDF accumulation — where
registers slot in without restructuring.  This module schedules a shift-add
netlist into pipeline stages under a per-stage adder-depth budget, counts the
balancing registers, estimates the resulting clock period with an adder
model, and produces the latency figure the cycle-accurate simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arch.metrics import node_bitwidths
from ..arch.netlist import ShiftAddNetlist
from ..arch.simulate import simulate_tdf_filter
from ..errors import SynthesisError
from ..hwcost.adders import CARRY_LOOKAHEAD, AdderModel

__all__ = ["PipelineSchedule", "schedule_pipeline", "simulate_pipelined"]


@dataclass(frozen=True)
class PipelineSchedule:
    """Stage assignment + register accounting for one netlist."""

    stage_of_node: Tuple[int, ...]
    num_stages: int
    max_stage_depth: int
    register_bits: int
    clock_period_ns: float

    @property
    def latency(self) -> int:
        """Extra cycles the pipeline adds before the first valid product."""
        return max(0, self.num_stages - 1)

    @property
    def throughput_speedup(self) -> float:
        """Unpipelined critical path / pipelined clock period (>= 1).

        A zero clock period with a nonzero unpipelined reference path means
        the schedule is inconsistent (a stage claims zero delay for real
        adders); that is an error, not an infinite — or silently 1.0 —
        speedup.
        """
        if self.clock_period_ns == 0.0:
            if self._unpipelined_ns != 0.0:
                raise SynthesisError(
                    "pipeline schedule has zero clock period but a nonzero "
                    f"unpipelined critical path ({self._unpipelined_ns} ns)"
                )
            return 1.0
        return self._unpipelined_ns / self.clock_period_ns

    # populated by schedule_pipeline via object.__setattr__ (frozen dataclass)
    _unpipelined_ns: float = 0.0


def schedule_pipeline(
    netlist: ShiftAddNetlist,
    max_stage_depth: int,
    input_bits: int = 16,
    model: AdderModel = CARRY_LOOKAHEAD,
) -> PipelineSchedule:
    """Assign every node to a pipeline stage with at most ``max_stage_depth``
    chained adders per stage.

    Stage of the input is 0; an adder lands in the earliest stage where its
    within-stage depth stays within budget.  Balancing registers are needed on
    every producer/consumer edge that crosses one or more stage boundaries
    (one register per crossed boundary, at the producer's bit width), and on
    tap outputs so all products leave aligned.
    """
    if max_stage_depth < 1:
        raise SynthesisError(f"max_stage_depth must be >= 1, got {max_stage_depth}")
    # The scheduler walks raw operand wiring below; a corrupt netlist would
    # yield a silently nonsensical schedule and register count, so audit the
    # structure first.  (Imported lazily: repro.verify builds on repro.arch.)
    from ..verify.structure import audit_structure

    audit_structure(netlist)
    widths = node_bitwidths(netlist, input_bits)

    stage = [0] * len(netlist)
    local_depth = [0] * len(netlist)  # adder depth within the node's stage
    for node in netlist.nodes[1:]:
        op_stage = max(stage[node.a.node], stage[node.b.node])
        depth_here = 1 + max(
            local_depth[op.node] if stage[op.node] == op_stage else 0
            for op in node.operands
        )
        if depth_here > max_stage_depth:
            op_stage += 1
            depth_here = 1
        stage[node.id] = op_stage
        local_depth[node.id] = depth_here

    num_stages = max(stage) + 1

    register_bits = 0
    for node in netlist.nodes[1:]:
        for op in node.operands:
            crossings = stage[node.id] - stage[op.node]
            register_bits += crossings * widths[op.node]
    last_stage = num_stages - 1
    for ref in netlist.outputs.values():
        if ref is None:
            continue
        register_bits += (last_stage - stage[ref.node]) * widths[ref.node]

    # Per-stage critical path -> clock period.
    stage_delay = [0.0] * num_stages
    arrival = [0.0] * len(netlist)
    for node in netlist.nodes[1:]:
        ready = max(
            (arrival[op.node] if stage[op.node] == stage[node.id] else 0.0)
            for op in node.operands
        )
        arrival[node.id] = ready + model.delay(widths[node.id])
        stage_delay[stage[node.id]] = max(
            stage_delay[stage[node.id]], arrival[node.id]
        )
    clock_period = max(stage_delay) if any(stage_delay) else model.delay(input_bits)

    # Unpipelined reference path for the speedup figure.
    flat_arrival = [0.0] * len(netlist)
    for node in netlist.nodes[1:]:
        ready = max(flat_arrival[node.a.node], flat_arrival[node.b.node])
        flat_arrival[node.id] = ready + model.delay(widths[node.id])
    unpipelined = max(flat_arrival, default=model.delay(input_bits))
    if unpipelined == 0.0:
        unpipelined = model.delay(input_bits)

    schedule = PipelineSchedule(
        stage_of_node=tuple(stage),
        num_stages=num_stages,
        max_stage_depth=max_stage_depth,
        register_bits=register_bits,
        clock_period_ns=clock_period,
    )
    object.__setattr__(schedule, "_unpipelined_ns", unpipelined)
    return schedule


def simulate_pipelined(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    samples: Sequence[int],
    schedule: PipelineSchedule,
) -> List[int]:
    """Cycle-accurate run with the schedule's latency applied.

    The pipelined filter's output equals the combinational filter's output
    delayed by ``schedule.latency`` cycles — the invariant the pipelining
    tests assert.
    """
    return simulate_tdf_filter(
        netlist, tap_names, samples, pipeline_latency=schedule.latency
    )
