"""General vector scaling — MRP beyond FIR filters (paper §1).

"It can be directly applied to any applications which can be expressed as a
vector scaling operation."  This module is that claim as a public API: given
any integer constant vector ``C``, synthesize a shift-add network computing
every product ``c_i * x`` simultaneously — usable for matrix-vector kernels
(each matrix row is one vector scaler), DCT butterflies, polyphase banks, or
mixer banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..arch.simulate import evaluate_nodes, evaluate_ref
from ..errors import SimulationError
from .mrp import MrpOptions
from .transform import MrpfArchitecture, synthesize_mrpf

__all__ = ["VectorScaler", "synthesize_vector_scaler"]


@dataclass(frozen=True)
class VectorScaler:
    """A synthesized multiplierless multiplier bank for a constant vector."""

    constants: Tuple[int, ...]
    architecture: MrpfArchitecture

    @property
    def netlist(self) -> ShiftAddNetlist:
        """The underlying shift-add netlist."""
        return self.architecture.netlist

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor cells in the multiplier block."""
        return self.architecture.adder_count

    def scale(self, x: int) -> List[int]:
        """Compute ``[c * x for c in constants]`` through the network."""
        outputs = evaluate_nodes(self.netlist, x)
        return [
            evaluate_ref(self.netlist, ref, outputs)
            for ref in self.netlist.tap_refs(self.architecture.tap_names)
        ]

    def verify(self, xs: Sequence[int] = (1, -1, 3, 255, -12345)) -> None:
        """Check every product against plain multiplication."""
        for x in xs:
            got = self.scale(x)
            expected = [c * x for c in self.constants]
            if got != expected:
                raise SimulationError(
                    f"vector scaler mismatch at x={x}: {got} != {expected}"
                )


def synthesize_vector_scaler(
    constants: Sequence[int],
    wordlength: Optional[int] = None,
    options: Optional[MrpOptions] = None,
    seed_compression: str = "none",
) -> VectorScaler:
    """MRP-optimize a constant vector into a verified multiplier bank.

    ``wordlength`` (the SIDC shift range) defaults to the bit width of the
    largest constant.
    """
    constants = tuple(int(c) for c in constants)
    if wordlength is None:
        wordlength = max((abs(c).bit_length() for c in constants), default=1)
        wordlength = max(wordlength, 1)
    architecture = synthesize_mrpf(
        constants, wordlength, options, seed_compression, verify=False
    )
    scaler = VectorScaler(constants=constants, architecture=architecture)
    scaler.verify()
    return scaler
