"""Graphviz export of MRP plans — the paper's Figures 2 and 3, generated.

Two views of a plan:

* :func:`plan_to_dot` — the solved structure: vertices, spanning-forest edges
  labelled with their SIDC identity, roots double-circled, aliases dashed
  (Figure 3(b) of the paper, for any filter);
* :func:`cover_to_dot` — the cover itself: solution colors as one cluster,
  each color linked to the vertices it covers (the set-cover view of
  Figure 2).
"""

from __future__ import annotations

from typing import List

from .mrp import MrpPlan

__all__ = ["plan_to_dot", "cover_to_dot"]


def _edge_expression(edge) -> str:
    """Human-readable SIDC identity of a tree edge."""
    src = f"{edge.src}"
    if edge.shift:
        src = f"({edge.src}<<{edge.shift})"
    if edge.src_sign < 0:
        src = f"-{src}"
    color = f"{edge.color}"
    if edge.color_shift:
        color = f"({edge.color}<<{edge.color_shift})"
    op = "+" if edge.color_sign > 0 else "-"
    return f"{src} {op} {color}"


def plan_to_dot(plan: MrpPlan, graph_name: str = "mrp_plan") -> str:
    """Render the spanning forest (paper Fig. 3(b)) as Graphviz dot text."""
    lines: List[str] = [f"digraph {graph_name} {{", "    rankdir=TB;"]
    lines.append('    label="SEED = roots + colors '
                 f'{sorted(set(plan.seed))}";')
    if plan.forest is not None:
        for assignment in plan.forest.topological_order():
            vertex = assignment.vertex
            if assignment.kind == "root":
                lines.append(
                    f'    v{vertex} [label="{vertex}", shape=doublecircle];'
                )
            elif assignment.kind == "alias":
                lines.append(
                    f'    v{vertex} [label="{vertex}\\n(=color)", '
                    f"shape=circle, style=dashed];"
                )
            else:
                lines.append(f'    v{vertex} [label="{vertex}", shape=circle];')
                edge = assignment.edge
                lines.append(
                    f'    v{edge.src} -> v{vertex} '
                    f'[label="{_edge_expression(edge)}"];'
                )
    lines.append("}")
    return "\n".join(lines) + "\n"


def cover_to_dot(plan: MrpPlan, graph_name: str = "mrp_cover") -> str:
    """Render the greedy cover (colors -> covered vertices) as dot text."""
    lines: List[str] = [f"digraph {graph_name} {{", "    rankdir=LR;"]
    lines.append("    subgraph cluster_colors {")
    lines.append('        label="solution colors";')
    for color in plan.solution_colors:
        lines.append(f'        c{color} [label="{color}", shape=box];')
    lines.append("    }")
    for vertex in plan.vertices:
        lines.append(f'    v{vertex} [label="{vertex}", shape=circle];')
    if plan.cover is not None:
        for step in plan.cover.steps:
            for vertex in sorted(step.newly_covered):
                lines.append(f"    c{step.color} -> v{vertex};")
    lines.append("}")
    return "\n".join(lines) + "\n"
