"""The paper's contribution: MRP optimization and MRPF synthesis."""

from .mrp import MrpOptions, MrpPlan, optimize, trivial_plan
from .pipeline import PipelineSchedule, schedule_pipeline, simulate_pipelined
from .sidc import TapBinding, normalize_taps
from .vector import VectorScaler, synthesize_vector_scaler
from .visualize import cover_to_dot, plan_to_dot
from .transform import (
    SEED_COMPRESSION_MODES,
    MrpfArchitecture,
    lower_plan,
    synthesize_mrpf,
)

__all__ = [
    "MrpOptions",
    "MrpPlan",
    "MrpfArchitecture",
    "PipelineSchedule",
    "SEED_COMPRESSION_MODES",
    "TapBinding",
    "VectorScaler",
    "cover_to_dot",
    "lower_plan",
    "normalize_taps",
    "optimize",
    "plan_to_dot",
    "schedule_pipeline",
    "simulate_pipelined",
    "synthesize_mrpf",
    "synthesize_vector_scaler",
    "trivial_plan",
]
