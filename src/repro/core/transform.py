"""MRPF synthesis: lower an MRP plan to a verified shift-add netlist (paper §3.5-§4).

The synthesized architecture has the paper's two-network shape:

* **SEED multiplication network** — multiplies the input by every SEED
  constant (roots + used solution colors).  Three compression modes:
  ``"none"`` (plain digit chains), ``"cse"`` (Hartley CSE over the SEED
  constants — the paper's MRPF+CSE), and ``"recursive"`` (MRP applied to the
  SEED vector itself, paper §4's architectural recursion).
* **Overhead add network** — one adder per spanning-tree child, mirroring the
  forest exactly: ``child = src_sign*(parent << L) + color_sign*(color << m)``.

Tap outputs are wired from vertex nodes via the tap bindings (shift + sign),
and the result is validated structurally and functionally before return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..arch.metrics import NetlistStats, analyze
from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..arch.simulate import verify_against_convolution
from ..cse.hartley import build_cse_refs, eliminate
from ..errors import SynthesisError
from ..numrep import odd_normalize
from .mrp import MrpOptions, MrpPlan, optimize

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = [
    "MrpfArchitecture",
    "synthesize_mrpf",
    "SEED_COMPRESSION_MODES",
    "VERIFY_SAMPLES",
]

SEED_COMPRESSION_MODES = ("none", "cse", "recursive")

VERIFY_SAMPLES = (1, -1, 3, 127, -128, 255, 1024, -777, 12345, -54321)
_VERIFY_SAMPLES = VERIFY_SAMPLES  # backwards-compatible alias


@dataclass(frozen=True)
class MrpfArchitecture:
    """A synthesized MRP filter: plan + netlist + tap wiring."""

    plan: MrpPlan
    netlist: ShiftAddNetlist
    tap_names: Tuple[str, ...]
    seed_compression: str

    @property
    def coefficients(self) -> Tuple[int, ...]:
        """The integer coefficient vector this architecture computes."""
        return self.plan.coefficients

    @property
    def adder_count(self) -> int:
        """Actual adders in the lowered netlist (sharing included)."""
        return self.netlist.adder_count

    @property
    def adder_depth(self) -> int:
        """Critical adder depth of the multiplier block."""
        return self.netlist.max_depth

    def stats(self, input_bits: int = 16) -> NetlistStats:
        """Full :class:`NetlistStats` bundle for this architecture."""
        return analyze(self.netlist, self.tap_names, input_bits)

    def verify(self, samples: Optional[Sequence[int]] = None) -> None:
        """End-to-end functional check against exact convolution."""
        verify_against_convolution(
            self.netlist,
            self.tap_names,
            self.coefficients,
            list(samples) if samples is not None else list(_VERIFY_SAMPLES),
        )


def synthesize_mrpf(
    coefficients: Sequence[int],
    wordlength: int,
    options: Optional[MrpOptions] = None,
    seed_compression: str = "none",
    verify: bool = True,
    budget: Optional["SolverBudget"] = None,
) -> MrpfArchitecture:
    """Optimize and lower ``coefficients`` into an MRPF netlist.

    ``seed_compression`` selects how the SEED multiplication network is
    built; see the module docstring.  With ``verify`` (default) the lowered
    netlist is simulated against exact convolution before being returned.
    ``budget`` is threaded into the optimizer's cover solver; see
    :func:`repro.core.mrp.optimize`.  For automatic degradation and retry on
    failure use :func:`repro.robust.synthesize` instead.
    """
    if seed_compression not in SEED_COMPRESSION_MODES:
        raise SynthesisError(
            f"seed_compression must be one of {SEED_COMPRESSION_MODES}, "
            f"got {seed_compression!r}"
        )
    plan = optimize(coefficients, wordlength, options, budget=budget)
    architecture = lower_plan(plan, seed_compression)
    if verify:
        architecture.verify()
    return architecture


def lower_plan(plan: MrpPlan, seed_compression: str = "none") -> MrpfArchitecture:
    """Lower an existing :class:`MrpPlan` to a netlist (no re-optimization)."""
    netlist = ShiftAddNetlist()
    representation = plan.options.representation

    seed_refs = _build_seed_network(netlist, plan, seed_compression)

    vertex_refs: Dict[int, Ref] = {}
    if plan.forest is not None:
        for assignment in plan.forest.topological_order():
            vertex = assignment.vertex
            if assignment.kind in ("root", "alias"):
                vertex_refs[vertex] = seed_refs[vertex]
            else:
                edge = assignment.edge
                parent = vertex_refs[edge.src]
                color = seed_refs[edge.color]
                a = Ref(
                    node=parent.node,
                    shift=parent.shift + edge.shift,
                    sign=parent.sign * edge.src_sign,
                )
                b = Ref(
                    node=color.node,
                    shift=color.shift + edge.color_shift,
                    sign=color.sign * edge.color_sign,
                )
                ref = netlist.add(a, b, label=f"overhead_v{vertex}")
                if netlist.ref_value(ref) != vertex:
                    raise SynthesisError(
                        f"overhead adder for vertex {vertex} computes "
                        f"{netlist.ref_value(ref)}"
                    )
                vertex_refs[vertex] = ref

    tap_names: List[str] = []
    for binding in plan.bindings:
        name = f"tap{binding.index}"
        tap_names.append(name)
        if binding.is_zero:
            netlist.mark_output(name, None)
            continue
        if binding.is_free:
            netlist.mark_output(
                name, Ref(node=0, shift=binding.shift, sign=binding.sign)
            )
            continue
        base = vertex_refs[binding.vertex]
        netlist.mark_output(
            name,
            Ref(
                node=base.node,
                shift=base.shift + binding.shift,
                sign=base.sign * binding.sign,
            ),
        )
    netlist.validate(expected_outputs=tap_names)
    return MrpfArchitecture(
        plan=plan,
        netlist=netlist,
        tap_names=tuple(tap_names),
        seed_compression=seed_compression,
    )


def _build_seed_network(
    netlist: ShiftAddNetlist, plan: MrpPlan, seed_compression: str
) -> Dict[int, Ref]:
    """Materialize every SEED constant; return constant -> ref (exact value)."""
    seed = plan.seed
    refs: Dict[int, Ref] = {}
    if not seed:
        return refs
    if seed_compression == "cse":
        network = eliminate(list(seed), plan.options.representation)
        for constant, ref in zip(seed, build_cse_refs(netlist, network)):
            refs[constant] = ref
        return refs
    if seed_compression == "recursive":
        return _build_recursive_seed(netlist, plan)
    for constant in seed:
        refs[constant] = netlist.ensure_constant(
            constant, plan.options.representation, label=f"seed_{constant}"
        )
    return refs


def _build_recursive_seed(
    netlist: ShiftAddNetlist, plan: MrpPlan
) -> Dict[int, Ref]:
    """Apply MRP once more to the SEED vector (paper §4) and lower that plan.

    The inner SEED constants are built as plain digit chains (one level of
    recursion is where the returns flatten out for filter-sized inputs); the
    inner overhead network then assembles the outer SEED constants.
    """
    seed = plan.seed
    inner_plan = optimize(
        list(seed),
        wordlength=max(v.bit_length() for v in seed),
        options=plan.options,
    )
    inner_refs: Dict[int, Ref] = {}
    for constant in inner_plan.seed:
        inner_refs[constant] = netlist.ensure_constant(
            constant, plan.options.representation, label=f"seed2_{constant}"
        )
    vertex_refs: Dict[int, Ref] = {}
    if inner_plan.forest is not None:
        for assignment in inner_plan.forest.topological_order():
            vertex = assignment.vertex
            if assignment.kind in ("root", "alias"):
                vertex_refs[vertex] = inner_refs[vertex]
            else:
                edge = assignment.edge
                parent = vertex_refs[edge.src]
                color = inner_refs[edge.color]
                ref = netlist.add(
                    Ref(
                        node=parent.node,
                        shift=parent.shift + edge.shift,
                        sign=parent.sign * edge.src_sign,
                    ),
                    Ref(
                        node=color.node,
                        shift=color.shift + edge.color_shift,
                        sign=color.sign * edge.color_sign,
                    ),
                    label=f"seed2_overhead_v{vertex}",
                )
                vertex_refs[vertex] = ref
    refs: Dict[int, Ref] = {}
    for constant in seed:
        odd, shift = odd_normalize(constant)
        base = vertex_refs.get(odd)
        if base is None:
            refs[constant] = netlist.ensure_constant(
                constant, plan.options.representation, label=f"seed_{constant}"
            )
        else:
            refs[constant] = Ref(node=base.node, shift=base.shift + shift,
                                 sign=base.sign)
    return refs
