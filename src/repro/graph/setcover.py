"""Greedy weighted minimum set cover with the paper's benefit function (§3.3-3.4).

The MRP color-selection problem is WMSC: find the cheapest set of colors whose
color sets cover every vertex.  The paper solves it greedily, repeatedly
picking the color maximizing

    f = beta * frequency - (1 - beta) * cost        (0 <= beta <= 1)

where ``frequency`` is the number of *still-uncovered* vertices in the color
set and ``cost`` the color's digit count.  ``beta`` skews the solution toward
fewer, denser shares (high beta) or cheaper, less-shared colors (low beta,
modeling deep-submicron interconnect/drive cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import BudgetExceeded, GraphError
from ..obs import span as obs_span

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = ["CoverStep", "CoverSolution", "benefit", "greedy_weighted_set_cover"]


def benefit(frequency: int, cost: float, beta: float) -> float:
    """The paper's benefit function ``f = beta*frequency - (1-beta)*cost``."""
    return beta * frequency - (1.0 - beta) * cost


@dataclass(frozen=True)
class CoverStep:
    """One greedy iteration: the color picked and what it newly covered."""

    color: Hashable
    benefit: float
    frequency: int
    cost: float
    newly_covered: FrozenSet


@dataclass(frozen=True)
class CoverSolution:
    """Result of the greedy WMSC: selection order, coverage map, total cost."""

    steps: Tuple[CoverStep, ...]
    covered_by: Mapping  # vertex -> color that first covered it

    @property
    def colors(self) -> Tuple[Hashable, ...]:
        """All primary colors present in the graph."""
        return tuple(step.color for step in self.steps)

    @property
    def total_cost(self) -> float:
        """Sum of the selected sets' costs."""
        return sum(step.cost for step in self.steps)


def greedy_weighted_set_cover(
    universe: Set,
    sets: Mapping[Hashable, FrozenSet],
    costs: Mapping[Hashable, float],
    beta: float = 0.5,
    element_weights: Mapping = None,
    strategy: str = "benefit",
    budget: Optional["SolverBudget"] = None,
) -> CoverSolution:
    """Cover ``universe`` greedily using ``sets`` weighted by the benefit function.

    ``strategy`` selects the greedy score:

    * ``"benefit"`` — the paper's ``f = beta*freq - (1-beta)*cost`` where the
      frequency optionally sums ``element_weights`` instead of counting.
    * ``"savings"`` — ``f = sum(weights of newly covered) - cost``, the exact
      adder-savings objective (an extension beyond the paper; ``beta`` is
      ignored).

    Ties on the score break toward higher frequency, then lower cost, then the
    smaller key (total order -> deterministic output).  Raises
    :class:`GraphError` if some element of the universe appears in no set.

    An optional cooperative ``budget`` is charged one unit per candidate set
    scanned; on exhaustion the raised :class:`BudgetExceeded` carries the
    partial :class:`CoverSolution` built so far (covering only part of the
    universe) as its ``partial`` attribute.
    """
    if not 0.0 <= beta <= 1.0:
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    if strategy not in ("benefit", "savings"):
        raise GraphError(f"unknown cover strategy {strategy!r}")
    with obs_span(
        "cover.greedy",
        universe=len(set(universe)),
        sets=len(sets),
        beta=beta,
        strategy=strategy,
    ):
        return _greedy_cover(
            universe, sets, costs, beta, element_weights, strategy, budget
        )


def _greedy_cover(
    universe: Set,
    sets: Mapping[Hashable, FrozenSet],
    costs: Mapping[Hashable, float],
    beta: float,
    element_weights: Mapping,
    strategy: str,
    budget: Optional["SolverBudget"],
) -> CoverSolution:
    weights = element_weights if element_weights is not None else {}
    uncovered: Set = set(universe)
    reachable: Set = set()
    for members in sets.values():
        reachable |= members
    missing = uncovered - reachable
    if missing:
        raise GraphError(f"elements {sorted(missing)!r} appear in no candidate set")

    # Reverse index so each pick only touches the sets of removed elements.
    sets_of_element: Dict[Hashable, List[Hashable]] = {}
    for key, members in sets.items():
        for element in members:
            sets_of_element.setdefault(element, []).append(key)
    remaining_count: Dict[Hashable, int] = {}
    remaining_weight: Dict[Hashable, float] = {}
    for key, members in sets.items():
        live = members & uncovered
        remaining_count[key] = len(live)
        remaining_weight[key] = sum(weights.get(e, 1.0) for e in live)

    steps: List[CoverStep] = []
    covered_by: Dict = {}
    while uncovered:
        if budget is not None:
            try:
                budget.spend(max(1, len(remaining_count)))
            except BudgetExceeded as exc:
                raise BudgetExceeded(
                    f"greedy cover interrupted with {len(uncovered)} of "
                    f"{len(covered_by) + len(uncovered)} elements uncovered: "
                    f"{exc}",
                    partial=CoverSolution(
                        steps=tuple(steps), covered_by=dict(covered_by)
                    ),
                ) from exc
        best_key = None
        best_rank: Tuple[float, float, float] = (float("-inf"), 0.0, 0.0)
        for key, frequency in remaining_count.items():
            if frequency == 0:
                continue
            if strategy == "savings":
                f = remaining_weight[key] - costs[key]
            else:
                f = benefit(remaining_weight[key], costs[key], beta)
            rank = (f, frequency, -costs[key])
            if (
                best_key is None
                or rank > best_rank
                or (rank == best_rank and _tie_order(key) < _tie_order(best_key))
            ):
                best_key, best_rank = key, rank
        if best_key is None:  # pragma: no cover - guarded by reachability check
            raise GraphError("greedy cover stalled with uncovered elements")
        newly = sets[best_key] & uncovered
        steps.append(
            CoverStep(
                color=best_key,
                benefit=best_rank[0],
                frequency=len(newly),
                cost=costs[best_key],
                newly_covered=frozenset(newly),
            )
        )
        for element in newly:
            covered_by[element] = best_key
            for key in sets_of_element.get(element, ()):
                remaining_count[key] -= 1
                remaining_weight[key] -= weights.get(element, 1.0)
        uncovered -= newly
    return CoverSolution(steps=tuple(steps), covered_by=covered_by)


def _tie_order(key: Hashable) -> Tuple[int, str]:
    """Deterministic total order for final tie-breaking: shortlex on repr.

    For the positive-integer color keys the MRP layer uses, shortlex equals
    numeric order — so ties fall to the *smallest* color, which is more likely
    to alias a vertex (paper step 6) and is never more expensive to shift.
    """
    text = repr(key)
    return (len(text), text)
