"""The SIDC colored multigraph (paper §2-§3.2).

Vertices are the filter's *primary coefficients* — odd positive integer
mantissas after odd-normalization (secondary coefficients, i.e. shifts of
another coefficient, have already been removed).  For every ordered vertex
pair ``(u, v)``, every shift ``L in 0..max_shift`` and every sign, the edge
``u -> v`` carries the SID coefficient

    xi = v - s * (u << L)        (s in {+1, -1})

meaning ``v * x = s * ((u * x) << L) + xi * x``.  All shifts of ``xi`` form a
**color class**; its odd positive representative is the **primary color**.
Selecting a primary color makes every edge of its class free (the product
``color * x`` is computed once in the SEED network and reused, shifts being
wires), so the paper's optimization reduces to covering all vertices with the
cheapest set of primary colors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from ..numrep import Representation, digit_cost, oddpart
from ..obs import span as obs_span

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = ["ColorEdge", "ColoredGraph", "build_colored_graph"]


@dataclass(frozen=True)
class ColorEdge:
    """One directed SIDC edge ``src -> dst``.

    The reconstruction identity is::

        dst == src_sign * (src << shift) + color_sign * (color << color_shift)

    where ``color`` is the primary (odd, positive) color of the edge's class.
    ``weight`` is the digit cost of the color — the paper's edge weight
    ``e_{i,j}`` (adder arrays needed for the correction product).
    """

    src: int
    dst: int
    shift: int
    src_sign: int
    color: int
    color_shift: int
    color_sign: int
    weight: int

    def __post_init__(self) -> None:
        reconstructed = (
            self.src_sign * (self.src << self.shift)
            + self.color_sign * (self.color << self.color_shift)
        )
        if reconstructed != self.dst:
            raise GraphError(
                f"inconsistent edge: {self.src_sign}*({self.src}<<{self.shift}) "
                f"+ {self.color_sign}*({self.color}<<{self.color_shift}) != {self.dst}"
            )


class ColoredGraph:
    """Immutable SIDC graph over a vertex set of odd positive integers.

    Exposes exactly what the MRP stages need:

    * ``color_sets``   — primary color -> vertices coverable by its class
    * ``color_costs``  — primary color -> digit cost in the chosen representation
    * ``edges_by_color`` — primary color -> the concrete edges, for spanning-
      tree construction after the cover is chosen
    * ``colors_of_vertex`` — reverse index for incremental frequency updates
    """

    def __init__(
        self,
        vertices: Iterable[int],
        edges: Iterable[ColorEdge],
        representation: Representation,
        max_shift: int,
    ):
        self._vertices: FrozenSet[int] = frozenset(vertices)
        for v in self._vertices:
            if v <= 0 or v % 2 == 0:
                raise GraphError(f"vertex {v} must be odd and positive")
        self._representation = representation
        self._max_shift = max_shift
        self._edges_by_color: Dict[int, List[ColorEdge]] = {}
        self._color_sets: Dict[int, Set[int]] = {}
        self._colors_of_vertex: Dict[int, Set[int]] = {v: set() for v in self._vertices}
        self._edges_into_by_color: Dict[int, Dict[int, List[ColorEdge]]] = {
            v: {} for v in self._vertices
        }
        for edge in edges:
            self._edges_by_color.setdefault(edge.color, []).append(edge)
            self._color_sets.setdefault(edge.color, set()).add(edge.dst)
            self._colors_of_vertex[edge.dst].add(edge.color)
            self._edges_into_by_color[edge.dst].setdefault(edge.color, []).append(edge)
        self._color_costs: Dict[int, int] = {
            color: digit_cost(color, representation) for color in self._color_sets
        }

    @classmethod
    def _from_prebuilt(
        cls,
        vertices: Iterable[int],
        representation: Representation,
        max_shift: int,
        edges_by_color: Dict[int, List[ColorEdge]],
        color_sets: Dict[int, Set[int]],
        colors_of_vertex: Dict[int, Set[int]],
        edges_into_by_color: Dict[int, Dict[int, List[ColorEdge]]],
        color_costs: Dict[int, int],
    ) -> "ColoredGraph":
        """Trusted constructor for the fast-path builder.

        :mod:`repro.fastpath.graphbuild` assembles the index dictionaries in
        its single edge pass; re-deriving them here (as ``__init__`` does)
        would double the build time for no information.  Callers guarantee
        the dictionaries are mutually consistent and that ``color_costs``
        matches ``digit_cost`` — the fast-path equivalence suite holds them
        to it.
        """
        graph = cls.__new__(cls)
        graph._vertices = frozenset(vertices)
        graph._representation = representation
        graph._max_shift = max_shift
        graph._edges_by_color = edges_by_color
        graph._color_sets = color_sets
        graph._colors_of_vertex = colors_of_vertex
        graph._edges_into_by_color = edges_into_by_color
        graph._color_costs = color_costs
        return graph

    @property
    def vertices(self) -> FrozenSet[int]:
        """The graph's vertex set (odd positive integers)."""
        return self._vertices

    @property
    def representation(self) -> Representation:
        """Digit representation used for color costs."""
        return self._representation

    @property
    def max_shift(self) -> int:
        """Maximum shift used during quantization or graph build."""
        return self._max_shift

    @property
    def colors(self) -> FrozenSet[int]:
        """All primary colors present in the graph."""
        return frozenset(self._color_sets)

    @property
    def num_edges(self) -> int:
        """Total number of colored edges."""
        return sum(len(edges) for edges in self._edges_by_color.values())

    def color_set(self, color: int) -> FrozenSet[int]:
        """Vertices reachable via any edge of ``color``'s class (its *color set*)."""
        return frozenset(self._color_sets[color])

    def color_cost(self, color: int) -> int:
        """Digit cost of the primary color (paper's ``cost`` property)."""
        return self._color_costs[color]

    def color_frequency(self, color: int) -> int:
        """Size of the color set (paper's ``frequency`` property)."""
        return len(self._color_sets[color])

    def colors_of_vertex(self, vertex: int) -> FrozenSet[int]:
        """Primary colors having at least one edge into ``vertex``."""
        return frozenset(self._colors_of_vertex[vertex])

    def edges_of_color(self, color: int) -> Tuple[ColorEdge, ...]:
        """All concrete edges whose class representative is ``color``."""
        return tuple(self._edges_by_color[color])

    def edges_into(self, vertex: int, allowed_colors: Set[int]) -> List[ColorEdge]:
        """Edges terminating at ``vertex`` whose color lies in ``allowed_colors``."""
        by_color = self._edges_into_by_color[vertex]
        found: List[ColorEdge] = []
        for color in by_color.keys() & allowed_colors:
            found.extend(by_color[color])
        return found


def build_colored_graph(
    vertices: Iterable[int],
    max_shift: int,
    representation: Representation = Representation.CSD,
    budget: Optional["SolverBudget"] = None,
) -> ColoredGraph:
    """Construct the full SIDC graph over ``vertices``.

    For ``M`` vertices this materializes up to ``2 * (max_shift + 1) * M *
    (M - 1)`` colored edges (paper §3.1).  Edges whose SID coefficient is zero
    are skipped — a zero color means ``dst`` is a shift of ``src``, which
    cannot happen between distinct odd vertices.  The optional cooperative
    ``budget`` is charged per vertex pair so oversized builds raise
    :class:`~repro.errors.BudgetExceeded` instead of stalling the pipeline.

    Construction normally runs through the batch kernels of
    :mod:`repro.fastpath.graphbuild` (numpy when available, pure python
    otherwise), which produce the identical graph several times faster;
    ``REPRO_FASTPATH=off`` selects this module's reference loop instead.
    The equivalence suite (``tests/test_fastpath_equivalence.py``) asserts
    the two paths are element-identical.
    """
    vertex_list = sorted(set(vertices))
    if max_shift < 0:
        raise GraphError(f"max_shift must be >= 0, got {max_shift}")
    from ..fastpath import graph_kernel

    kernel = graph_kernel()
    with obs_span(
        "graph.build",
        vertices=len(vertex_list),
        max_shift=max_shift,
        representation=representation.value,
        kernel=kernel,
    ):
        if kernel == "off":
            return _build_edges(vertex_list, max_shift, representation, budget)
        from ..fastpath.graphbuild import build_graph_fast

        return build_graph_fast(
            vertex_list, max_shift, representation, budget, kernel
        )


def _build_edges(
    vertex_list: List[int],
    max_shift: int,
    representation: Representation,
    budget: Optional["SolverBudget"],
) -> ColoredGraph:
    edges: List[ColorEdge] = []
    for src in vertex_list:
        for dst in vertex_list:
            if src == dst:
                continue
            if budget is not None:
                budget.spend()
            for shift in range(max_shift + 1):
                shifted = src << shift
                for src_sign in (1, -1):
                    xi = dst - src_sign * shifted
                    if xi == 0:
                        continue
                    color_sign = 1 if xi > 0 else -1
                    magnitude = abs(xi)
                    primary = abs(oddpart(magnitude))
                    color_shift = (magnitude // primary).bit_length() - 1
                    edges.append(
                        ColorEdge(
                            src=src,
                            dst=dst,
                            shift=shift,
                            src_sign=src_sign,
                            color=primary,
                            color_shift=color_shift,
                            color_sign=color_sign,
                            weight=digit_cost(primary, representation),
                        )
                    )
    return ColoredGraph(vertex_list, edges, representation, max_shift)
