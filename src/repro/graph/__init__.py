"""Graph machinery: SIDC colored multigraph, greedy WMSC, spanning forests."""

from .colored import ColorEdge, ColoredGraph, build_colored_graph
from .exact_cover import exact_weighted_set_cover, prune_dominated_sets
from .setcover import (
    CoverSolution,
    CoverStep,
    benefit,
    greedy_weighted_set_cover,
)
from .spanning import SpanningForest, TreeAssignment, build_spanning_forest

__all__ = [
    "ColorEdge",
    "ColoredGraph",
    "CoverSolution",
    "CoverStep",
    "SpanningForest",
    "TreeAssignment",
    "benefit",
    "build_colored_graph",
    "build_spanning_forest",
    "exact_weighted_set_cover",
    "prune_dominated_sets",
    "greedy_weighted_set_cover",
]
