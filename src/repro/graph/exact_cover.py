"""Exact weighted minimum set cover by branch and bound.

The paper solves WMSC greedily because it is NP-complete; for small instances
an exact solver is tractable and lets us *measure* the greedy's optimality
gap instead of guessing at it (``benchmarks/bench_ablation_optimality.py``).

The solver is a classical element-branching branch and bound:

* dominated sets are removed up front (same-or-smaller coverage at
  same-or-higher cost can never help an optimal solution);
* at each node the uncovered element with the *fewest* candidate sets is
  branched on (fail-first), trying its candidates cheapest-first;
* the admissible lower bound is the cost of the cheapest candidate per
  uncovered element, maximized (each uncovered element forces at least one
  more set at least that expensive).

Instances are size-guarded: universes beyond ``max_universe`` raise rather
than silently running forever.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import BudgetExceeded, CoverBudgetError, GraphError
from ..obs import span as obs_span
from .setcover import CoverSolution, CoverStep

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = ["exact_weighted_set_cover", "prune_dominated_sets"]


def prune_dominated_sets(
    sets: Mapping[Hashable, FrozenSet],
    costs: Mapping[Hashable, float],
) -> List[Hashable]:
    """Keys of sets that survive dominance pruning.

    A set is dominated when another covers a superset at no higher cost
    (ties broken deterministically toward the smaller key, which is kept).
    """
    keys = sorted(sets, key=lambda k: (costs[k], -len(sets[k]), repr(k)))
    survivors: List[Hashable] = []
    for key in keys:
        members = sets[key]
        dominated = False
        for kept in survivors:
            if members <= sets[kept] and costs[kept] <= costs[key]:
                dominated = True
                break
        if not dominated:
            survivors.append(key)
    return survivors


def exact_weighted_set_cover(
    universe: Set,
    sets: Mapping[Hashable, FrozenSet],
    costs: Mapping[Hashable, float],
    max_universe: int = 18,
    max_nodes: int = 2_000_000,
    budget: Optional["SolverBudget"] = None,
) -> CoverSolution:
    """Provably minimum-cost cover of ``universe`` (small instances only).

    Raises :class:`GraphError` when the universe exceeds ``max_universe`` or
    when an element is uncoverable.  When the ``max_nodes`` cap — or the
    optional cooperative ``budget`` (wall clock and/or nodes) — is exhausted
    mid-search, raises :class:`CoverBudgetError` whose ``partial`` attribute
    carries the best *incumbent* cover found so far (a complete cover whose
    optimality is simply unproven), letting callers degrade gracefully
    instead of recomputing from scratch.
    """
    universe = set(universe)
    if len(universe) > max_universe:
        raise GraphError(
            f"exact cover limited to {max_universe} elements, got {len(universe)}"
        )
    reachable: Set = set()
    for members in sets.values():
        reachable |= members
    if universe - reachable:
        raise GraphError(
            f"elements {sorted(universe - reachable)!r} appear in no set"
        )

    survivors = prune_dominated_sets(
        {k: sets[k] & frozenset(universe) for k in sets}, costs
    )
    candidates_of: Dict = {}
    for element in universe:
        candidates_of[element] = sorted(
            (k for k in survivors if element in sets[k]),
            key=lambda k: (costs[k], repr(k)),
        )

    best_cost = [float("inf")]
    best_pick: List[Optional[Tuple[Hashable, ...]]] = [None]
    nodes = [0]

    def lower_bound(uncovered: Set) -> float:
        bound = 0.0
        for element in uncovered:
            cheapest = costs[candidates_of[element][0]]
            bound = max(bound, cheapest)
        return bound

    def search(uncovered: Set, cost: float, picked: Tuple[Hashable, ...]) -> None:
        nodes[0] += 1
        if nodes[0] > max_nodes:
            raise BudgetExceeded("exact cover exceeded its node budget")
        if budget is not None:
            budget.spend()
        if not uncovered:
            if cost < best_cost[0]:
                best_cost[0] = cost
                best_pick[0] = picked
            return
        if cost + lower_bound(uncovered) >= best_cost[0]:
            return
        # Fail-first: branch on the element with the fewest candidates.
        element = min(
            uncovered, key=lambda e: (len(candidates_of[e]), repr(e))
        )
        for key in candidates_of[element]:
            if cost + costs[key] >= best_cost[0]:
                continue
            search(uncovered - sets[key], cost + costs[key], picked + (key,))

    def solution_from(picked: Tuple[Hashable, ...]) -> CoverSolution:
        steps: List[CoverStep] = []
        covered_by: Dict = {}
        remaining = set(universe)
        for key in picked:
            newly = sets[key] & remaining
            steps.append(
                CoverStep(
                    color=key,
                    benefit=0.0,
                    frequency=len(newly),
                    cost=costs[key],
                    newly_covered=frozenset(newly),
                )
            )
            for element in newly:
                covered_by[element] = key
            remaining -= newly
        return CoverSolution(steps=tuple(steps), covered_by=covered_by)

    try:
        with obs_span(
            "cover.exact",
            universe=len(universe),
            sets=len(survivors),
            max_nodes=max_nodes,
        ):
            search(set(universe), 0.0, ())
    except BudgetExceeded as exc:
        incumbent = (
            solution_from(best_pick[0]) if best_pick[0] is not None else None
        )
        suffix = (
            " (incumbent cover attached)" if incumbent is not None
            else " (no incumbent found)"
        )
        raise CoverBudgetError(str(exc) + suffix, partial=incumbent) from exc
    if best_pick[0] is None:  # pragma: no cover - guarded by reachability
        raise GraphError("exact cover found no solution")
    return solution_from(best_pick[0])
