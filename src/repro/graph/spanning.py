"""Depth-bounded spanning forests over the covered SIDC subgraph (paper §3.4).

After the greedy cover selects the solution colors, the subgraph of their
edges spans all vertices but is generally disconnected.  Each weakly-connected
component needs one vertex computed directly — a **root** — and the rest hang
off it as a spanning tree whose height bounds the filter's adder-chain delay.
The paper picks roots by all-pairs-shortest-path eccentricity (the center of
the component gives the shortest tree) and reports Table 1 under a tree-depth
constraint of 3; vertices unreachable within the bound become extra roots.

Vertices whose value *equals* a solution color need no predecessor at all
(paper step 6): the SEED network already computes their product.  They enter
the forest as parentless depth-0 *aliases* and may parent other vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import GraphError
from ..obs import span as obs_span
from .colored import ColorEdge, ColoredGraph

__all__ = ["TreeAssignment", "SpanningForest", "build_spanning_forest"]


@dataclass(frozen=True)
class TreeAssignment:
    """How one vertex is computed in the overhead add network.

    ``kind`` is one of:

    * ``"root"``  — computed directly by a SEED multiplication (no parent)
    * ``"alias"`` — equal to a solution color; free (no parent, no adder)
    * ``"child"`` — one overhead adder combining the parent (shifted) with a
      shifted solution color, per ``edge``'s reconstruction identity
    """

    vertex: int
    kind: str
    depth: int
    parent: Optional[int] = None
    edge: Optional[ColorEdge] = None

    def __post_init__(self) -> None:
        if self.kind not in ("root", "alias", "child"):
            raise GraphError(f"unknown assignment kind {self.kind!r}")
        if self.kind == "child" and (self.parent is None or self.edge is None):
            raise GraphError(f"child vertex {self.vertex} lacks parent/edge")
        if self.kind != "child" and self.depth != 0:
            raise GraphError(f"{self.kind} vertex {self.vertex} must sit at depth 0")


@dataclass(frozen=True)
class SpanningForest:
    """The complete overhead-add structure for all vertices."""

    assignments: Tuple[TreeAssignment, ...]

    def __post_init__(self) -> None:
        by_vertex = {}
        for a in self.assignments:
            if a.vertex in by_vertex:
                raise GraphError(f"vertex {a.vertex} assigned twice")
            by_vertex[a.vertex] = a
        for a in self.assignments:
            if a.kind == "child":
                parent = by_vertex.get(a.parent)
                if parent is None:
                    raise GraphError(f"vertex {a.vertex} has unknown parent {a.parent}")
                if parent.depth + 1 != a.depth:
                    raise GraphError(
                        f"vertex {a.vertex} depth {a.depth} != parent depth + 1"
                    )

    def assignment(self, vertex: int) -> TreeAssignment:
        """Look up the assignment of one vertex."""
        for a in self.assignments:
            if a.vertex == vertex:
                return a
        raise KeyError(vertex)

    @property
    def roots(self) -> Tuple[int, ...]:
        """Vertices computed directly (tree roots), sorted."""
        return tuple(sorted(a.vertex for a in self.assignments if a.kind == "root"))

    @property
    def aliases(self) -> Tuple[int, ...]:
        """Vertices equal to a solution color (free), sorted."""
        return tuple(sorted(a.vertex for a in self.assignments if a.kind == "alias"))

    @property
    def children(self) -> Tuple[TreeAssignment, ...]:
        """Assignments computed via an overhead adder."""
        return tuple(a for a in self.assignments if a.kind == "child")

    @property
    def max_depth(self) -> int:
        """Deepest tree level in the forest."""
        return max((a.depth for a in self.assignments), default=0)

    @property
    def overhead_adders(self) -> int:
        """One adder per child vertex (paper's overhead add network size)."""
        return len(self.children)

    def topological_order(self) -> Tuple[TreeAssignment, ...]:
        """Assignments sorted so every parent precedes its children."""
        return tuple(sorted(self.assignments, key=lambda a: (a.depth, a.vertex)))


def build_spanning_forest(
    graph: ColoredGraph,
    solution_colors: Sequence[int],
    depth_limit: Optional[int] = None,
) -> SpanningForest:
    """Build the depth-bounded spanning forest for the chosen colors.

    Strategy (mirrors paper §3.4): saturate reachability from already-placed
    vertices breadth-first (so trees have minimal height), and whenever
    progress stalls, promote a new root chosen as the minimum-eccentricity
    vertex of the component (over remaining vertices) containing the smallest
    remaining vertex.
    """
    colors: Set[int] = set(solution_colors)
    if depth_limit is not None and depth_limit < 1:
        raise GraphError(f"depth_limit must be >= 1, got {depth_limit}")
    limit = depth_limit if depth_limit is not None else len(graph.vertices) + 1
    with obs_span(
        "spanning.forest",
        vertices=len(graph.vertices),
        colors=len(colors),
        depth_limit=depth_limit,
    ):
        return _build_forest(graph, colors, limit)


def _build_forest(
    graph: ColoredGraph, colors: Set[int], limit: int
) -> SpanningForest:
    assignments: Dict[int, TreeAssignment] = {}
    # Paper step 6: vertices equal to a solution color are free aliases.
    for vertex in sorted(graph.vertices):
        if vertex in colors:
            assignments[vertex] = TreeAssignment(vertex=vertex, kind="alias", depth=0)
    unassigned: Set[int] = set(graph.vertices) - set(assignments)

    while unassigned:
        _saturate(graph, colors, limit, assignments, unassigned)
        if not unassigned:
            break
        root = _choose_root(graph, colors, unassigned)
        assignments[root] = TreeAssignment(vertex=root, kind="root", depth=0)
        unassigned.discard(root)
    return SpanningForest(assignments=tuple(
        assignments[v] for v in sorted(assignments)
    ))


def _saturate(
    graph: ColoredGraph,
    colors: Set[int],
    limit: int,
    assignments: Dict[int, TreeAssignment],
    unassigned: Set[int],
) -> None:
    """Attach vertices breadth-first, always at the minimal feasible depth."""
    while True:
        candidates: Dict[int, Tuple[Tuple[int, int, int, int, int], ColorEdge]] = {}
        for vertex in unassigned:
            best: Optional[Tuple[Tuple[int, int, int, int, int], ColorEdge]] = None
            for edge in graph.edges_into(vertex, colors):
                parent = assignments.get(edge.src)
                if parent is None or parent.depth + 1 > limit:
                    continue
                rank = (
                    parent.depth + 1,
                    edge.weight,
                    edge.shift,
                    edge.color_shift,
                    edge.src,
                )
                if best is None or rank < best[0]:
                    best = (rank, edge)
            if best is not None:
                candidates[vertex] = best
        if not candidates:
            return
        min_depth = min(rank[0] for rank, _ in candidates.values())
        for vertex, (rank, edge) in sorted(candidates.items()):
            if rank[0] != min_depth:
                continue
            assignments[vertex] = TreeAssignment(
                vertex=vertex,
                kind="child",
                depth=min_depth,
                parent=edge.src,
                edge=edge,
            )
            unassigned.discard(vertex)


def _choose_root(
    graph: ColoredGraph, colors: Set[int], unassigned: Set[int]
) -> int:
    """Pick the next root: APSP eccentricity center (paper's rule).

    The undirected view of the solution-colored edges restricted to the
    remaining vertices is split into components; within the component holding
    the smallest remaining vertex, the vertex of minimum eccentricity wins
    (smallest value breaks ties).
    """
    undirected = nx.Graph()
    undirected.add_nodes_from(unassigned)
    for color in colors:
        for edge in graph.edges_of_color(color):
            if edge.src in unassigned and edge.dst in unassigned:
                undirected.add_edge(edge.src, edge.dst)
    anchor = min(unassigned)
    component = nx.node_connected_component(undirected, anchor)
    subgraph = undirected.subgraph(component)
    eccentricities = nx.eccentricity(subgraph)
    return min(sorted(component), key=lambda v: (eccentricities[v], v))
