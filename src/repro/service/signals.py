"""Signal-driven lifecycle for the stdlib service: serve, drain, exit.

SIGTERM (and SIGINT) trigger a *graceful drain* rather than an abrupt
exit: the server stops accepting connections, the queue closes (queued
jobs stay durable for the next start), and running jobs get the
configured grace period to finish.  The exit code follows the CLI's
established taxonomy: ``0`` for a clean drain, ``5`` (partial results)
when the grace period expired with jobs still running — those jobs are
requeued on the next start by the store's recovery path, so a noisy
shutdown degrades to a resume, never to data loss.
"""

from __future__ import annotations

import signal
import threading
from http.server import ThreadingHTTPServer

from .. import obs
from .app import SynthesisService

__all__ = ["run_forever"]

#: Exit codes aligned with ``repro.eval.__main__`` (0 ok, 5 partial).
EXIT_OK = 0
EXIT_PARTIAL = 5


def run_forever(
    server: ThreadingHTTPServer,
    service: SynthesisService,
    grace_s: float = None,
    ready=None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain; returns the exit code.

    Must run on the main thread (signal handlers can only be installed
    there); the HTTP server itself runs on a helper thread so the main
    thread can sit on the shutdown event.  ``ready`` (if given) is called
    once the handlers are installed and the server is accepting — anything
    announced earlier could race a SIGTERM into the default handler.
    """
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal API
        obs.event("service.signal", signal=signal.Signals(signum).name)
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    serve_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-service-http",
        daemon=True,
    )
    serve_thread.start()
    try:
        if ready is not None:
            ready()
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    server.shutdown()
    serve_thread.join(timeout=5.0)
    server.server_close()
    clean = service.drain(grace_s)
    obs.event("service.drained", clean=clean)
    return EXIT_OK if clean else EXIT_PARTIAL
