"""Bounded, multi-tenant, round-robin work queue for the job service.

A single FIFO lets one chatty tenant starve everyone behind it; an
unbounded queue lets a request flood wedge the process long after the
clients gave up.  :class:`FairQueue` fixes both: jobs are held in
per-tenant FIFOs drained round-robin (each tenant gets one job per
rotation, so a tenant with 100 queued jobs and a tenant with 1 both make
progress), and both the total depth and the per-tenant depth are capped —
a full queue raises :class:`QueueFull` *before* the job is accepted, which
the admission layer turns into a 429 with ``Retry-After``.

The queue stores only job ids; the durable truth about a job lives in the
:class:`~repro.service.store.JobStore`.  Consequently the queue never needs
crash recovery of its own — on restart the store's surviving ``queued``
jobs are simply re-enqueued — and cancellation needs no queue surgery: the
dispatcher revalidates a job's state against the store after popping it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

from ..errors import ServiceError
from ..obs import metrics as obs_metrics

__all__ = ["FairQueue", "QueueFull"]


class QueueFull(ServiceError):
    """The queue (or one tenant's share of it) is at capacity.

    ``scope`` is ``"total"`` or ``"tenant"`` so the admission layer can
    report *which* limit shed the request.
    """

    def __init__(self, message: str, scope: str = "total") -> None:
        super().__init__(message)
        self.scope = scope


class FairQueue:
    """Depth-bounded job-id queue with per-tenant round-robin draining."""

    def __init__(
        self,
        max_depth: int,
        max_depth_per_tenant: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ServiceError(f"max_depth must be >= 1, got {max_depth}")
        if max_depth_per_tenant is not None and max_depth_per_tenant < 1:
            raise ServiceError(
                f"max_depth_per_tenant must be >= 1, got "
                f"{max_depth_per_tenant}"
            )
        self.max_depth = max_depth
        self.max_depth_per_tenant = max_depth_per_tenant
        self._cond = threading.Condition()
        self._queues: Dict[str, Deque[str]] = {}
        self._rotation: Deque[str] = deque()  # tenants with queued work
        self._depth = 0
        self._closed = False

    # -- producers -----------------------------------------------------------

    def push(self, tenant: str, job_id: str) -> None:
        """Enqueue ``job_id`` for ``tenant``; raises :class:`QueueFull`.

        Pushing to a closed (draining) queue also raises
        :class:`QueueFull` — the caller maps that to "not admitting".
        """
        with self._cond:
            if self._closed:
                raise QueueFull("queue is closed (service draining)")
            if self._depth >= self.max_depth:
                raise QueueFull(
                    f"queue depth {self._depth} is at the limit "
                    f"({self.max_depth})"
                )
            per_tenant = self._queues.get(tenant)
            if (
                self.max_depth_per_tenant is not None
                and per_tenant is not None
                and len(per_tenant) >= self.max_depth_per_tenant
            ):
                raise QueueFull(
                    f"tenant {tenant!r} has {len(per_tenant)} queued jobs, "
                    f"at its limit ({self.max_depth_per_tenant})",
                    scope="tenant",
                )
            if per_tenant is None:
                per_tenant = self._queues[tenant] = deque()
            if not per_tenant:
                self._rotation.append(tenant)
            per_tenant.append(job_id)
            self._depth += 1
            self._set_depth_gauge()
            self._cond.notify()

    # -- consumers -----------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the next job id fairly, or ``None`` on timeout/close.

        Tenants are served round-robin: the tenant at the head of the
        rotation yields one job and moves to the tail (if it still has
        work), so no tenant waits for another's whole backlog.

        A closed queue returns ``None`` immediately *even when jobs are
        still queued*: starting new work after a drain began would defeat
        the drain's grace period, and the queued jobs are not lost — they
        stay ``queued`` in the durable store for the next server start.
        """
        with self._cond:
            while True:
                if self._closed:
                    return None
                if self._depth > 0:
                    break
                if not self._cond.wait(timeout=timeout):
                    return None
            tenant = self._rotation.popleft()
            per_tenant = self._queues[tenant]
            job_id = per_tenant.popleft()
            if per_tenant:
                self._rotation.append(tenant)
            else:
                del self._queues[tenant]
            self._depth -= 1
            self._set_depth_gauge()
            return job_id

    # -- introspection and shutdown -----------------------------------------

    def _set_depth_gauge(self) -> None:
        # The queue owns its gauge: every push/pop keeps the exposition in
        # step, instead of callers remembering to re-read depth() after
        # each mutation (the submit and dispatch paths used to disagree).
        obs_metrics.gauge("repro_service_queue_depth").set(self._depth)

    def depth(self, tenant: Optional[str] = None) -> int:
        """Jobs currently queued, overall or for one tenant."""
        with self._cond:
            if tenant is None:
                return self._depth
            per_tenant = self._queues.get(tenant)
            return len(per_tenant) if per_tenant is not None else 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting and dispensing jobs (drain path).

        Jobs still queued are deliberately *not* drained here — they remain
        ``queued`` in the durable store and are re-enqueued on the next
        server start.  Blocked :meth:`pop` callers wake up with ``None``,
        and every later :meth:`pop` returns ``None`` regardless of depth,
        so no dispatcher can start a brand-new job after the drain began.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
