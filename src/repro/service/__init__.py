"""Synthesis-as-a-service: a fault-tolerant job service over the sweep engine.

Layers the supervised sweep engine (:mod:`repro.eval.supervisor`) and the
content-addressed cache (:mod:`repro.eval.cache`) behind a small HTTP API
with the reliability features a shared deployment needs:

* durable, idempotent job store keyed by sweep signature
  (:mod:`repro.service.store`);
* bounded fair queue plus admission control, load shedding with informed
  ``Retry-After``, and a worker-pool circuit breaker
  (:mod:`repro.service.queue`, :mod:`repro.service.admission`);
* per-request budgets clamped to server ceilings and a deadline reaper
  (:mod:`repro.service.budgets`);
* deterministic artifact generation shared with the CLI, so served bytes
  equal exported bytes (:mod:`repro.service.artifacts`);
* graceful signal-driven drain (:mod:`repro.service.signals`);
* a resilient stdlib-only client SDK — deadline budgets, decorrelated
  jitter retries, a client-side circuit breaker, idempotent resubmission
  and long-poll ``wait_for`` (:mod:`repro.service.client`).

The HTTP front end is stdlib-only (``http.server``); an optional FastAPI
adapter (:mod:`repro.service.fastapi_adapter`) mounts the same engine when
that stack happens to be installed, but nothing here requires it.
"""

from .admission import AdmissionController, CircuitBreaker, DurationEwma
from .app import (
    ServiceConfig,
    ServiceHTTPHandler,
    SynthesisService,
    make_server,
)
from .artifacts import (
    ARTIFACT_KINDS,
    artifact_catalog_entries,
    fetch_artifact,
    generate_artifact,
)
from .budgets import BudgetPolicy, Reaper
from .client import ClientConfig, ServiceClient, TERMINAL_STATES
from .queue import FairQueue, QueueFull
from .signals import run_forever
from .store import JobRecord, JobSpec, JobState, JobStore

__all__ = [
    "ARTIFACT_KINDS",
    "AdmissionController",
    "BudgetPolicy",
    "CircuitBreaker",
    "ClientConfig",
    "DurationEwma",
    "FairQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "QueueFull",
    "Reaper",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPHandler",
    "SynthesisService",
    "TERMINAL_STATES",
    "artifact_catalog_entries",
    "fetch_artifact",
    "generate_artifact",
    "make_server",
    "run_forever",
]
