"""Resilient, stdlib-only client SDK for the synthesis job service.

The server side of :mod:`repro.service` is crash-safe; this module makes
the *wire* safe to stand on.  Every call survives the network faults the
netchaos proxy (:mod:`repro.robust.netchaos`) can inject — connection
refused, resets mid-response, hangs, truncation, garbage bytes, 429/503
storms — without losing or duplicating a job, because the service's
sweep-signature idempotency makes replaying a submission after an
*ambiguous* failure provably safe: the same spec maps to the same job.

Retry discipline, in order of application per attempt:

* **Per-request timeout** — every socket operation is bounded by
  ``request_timeout_s`` (long-polls by their ``wait`` plus slack), so a
  hung accept can never wedge the caller.
* **Overall deadline budget** — each logical operation runs under a
  :class:`~repro.robust.SolverBudget` (the same deadline semantics the
  solver tiers use: anchored at first use, monotonic, queryable).  When
  the remaining budget cannot cover the next attempt — including a server
  ``Retry-After`` longer than what is left — the client fails fast with
  :class:`~repro.errors.ClientDeadlineError` carrying the last server
  state it saw, never a silent hang.
* **Capped exponential backoff with decorrelated jitter** — the sleep
  before attempt *n+1* is drawn uniformly from ``[base, 3 × previous]``
  and capped, so synchronized clients decorrelate; a server
  ``Retry-After`` raises the floor (the server knows its backlog better
  than any client-side curve).
* **Client-side circuit breaker** — ``breaker_threshold`` *consecutive*
  transport-level failures (refused, reset, timeout, garbage) open the
  breaker for ``breaker_cooldown_s``; while open every call fails
  immediately with :class:`~repro.errors.ClientCircuitOpen`, mirroring
  the server's admission breaker so a dead endpoint is not hammered.
  Server-spoken push-back (429/503/5xx) does *not* trip it — a server
  telling you to back off is alive.

Transport model: one fresh connection per request, deliberately — no
pooled connection can be poisoned by a mid-stream fault, and on loopback
the cost is noise (the e2e gate bounds the disabled-faults overhead).
Responses are read strictly against ``Content-Length``; a short body
raises ``IncompleteRead`` and is retried like any transport fault, so a
truncated artifact can never be returned as complete.

``wait_for`` rides the server's long-poll endpoint
(``GET /v1/jobs/{id}?wait=S&etag=R``): the job view's ``revision`` field
is the resume token, so a dropped long-poll costs one round-trip, never a
missed transition.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from .. import obs
from ..errors import (
    ClientCircuitOpen,
    ClientDeadlineError,
    ClientError,
    ServerRejected,
)
from ..obs import metrics as obs_metrics
from ..robust import SolverBudget
from .store import JobState

__all__ = ["ClientConfig", "ServiceClient", "TERMINAL_STATES"]

#: Job states :meth:`ServiceClient.wait_for` stops at by default.
TERMINAL_STATES = frozenset({
    JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED,
    JobState.EXPIRED,
})

#: Statuses that mean "try again later" rather than "you are wrong".
_RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class ClientConfig:
    """Every tunable of one client instance, in one place."""

    base_url: str
    #: Socket-level bound on any single request (long-polls get slack).
    request_timeout_s: float = 10.0
    #: Default overall budget per logical operation (``None`` = unbounded,
    #: which is almost never what a caller wants).
    deadline_s: Optional[float] = 300.0
    max_attempts: int = 16
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    #: Long-poll wait asked of the server per ``wait_for`` round-trip.
    poll_wait_s: float = 20.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 5.0
    #: Seeds the jitter RNG so tests replay exact backoff sequences.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        parts = urlsplit(self.base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ClientError(
                f"base_url must be http://host[:port], got {self.base_url!r}"
            )
        if self.request_timeout_s <= 0.0:
            raise ClientError("request_timeout_s must be > 0")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ClientError("deadline_s must be > 0 or None")
        if self.max_attempts < 1:
            raise ClientError("max_attempts must be >= 1")
        if not 0.0 < self.backoff_base_s <= self.backoff_cap_s:
            raise ClientError(
                "need 0 < backoff_base_s <= backoff_cap_s, got "
                f"{self.backoff_base_s}/{self.backoff_cap_s}"
            )
        if self.poll_wait_s <= 0.0:
            raise ClientError("poll_wait_s must be > 0")
        if self.breaker_threshold < 1:
            raise ClientError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0.0:
            raise ClientError("breaker_cooldown_s must be > 0")

    @property
    def host(self) -> str:
        return urlsplit(self.base_url).hostname

    @property
    def port(self) -> int:
        return urlsplit(self.base_url).port or 80


class _ClientBreaker:
    """Consecutive-transport-failure breaker, the client-side mirror of
    :class:`~repro.service.admission.CircuitBreaker`.

    Opens after ``threshold`` consecutive failures; while open,
    :meth:`allow` raises without touching the network.  After the
    cooldown one probe is let through (half-open): its failure re-opens
    immediately, its success closes the breaker.
    """

    def __init__(
        self, threshold: int, cooldown_s: float, clock=time.monotonic
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> None:
        if self._opened_at is None:
            return
        now = self._clock()
        elapsed = now - self._opened_at
        if elapsed < self.cooldown_s and not self._probing:
            remaining = self.cooldown_s - elapsed
            raise ClientCircuitOpen(
                f"client circuit breaker is open for another "
                f"{remaining:.1f}s after {self._failures} consecutive "
                f"transport failures",
                retry_after_s=max(0.1, remaining),
            )
        self._probing = True  # half-open: this call is the probe

    def record_failure(self) -> None:
        self._failures += 1
        if self._probing or self._failures >= self.threshold:
            if self._opened_at is None or self._probing:
                obs_metrics.counter(
                    "repro_client_breaker_trips_total"
                ).inc()
            self._opened_at = self._clock()
            self._probing = False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False


class _Transport(Exception):
    """Internal: one attempt failed in a retryable way (never escapes)."""

    def __init__(self, reason: str, retry_after_s: Optional[float] = None,
                 transport_fault: bool = True,
                 last_state: object = None) -> None:
        super().__init__(reason)
        self.retry_after_s = retry_after_s
        self.transport_fault = transport_fault
        self.last_state = last_state


class ServiceClient:
    """The resilient front door to one :mod:`repro.service` endpoint."""

    def __init__(self, base_url_or_config, **overrides) -> None:
        if isinstance(base_url_or_config, ClientConfig):
            config = base_url_or_config
        else:
            config = ClientConfig(base_url=base_url_or_config, **overrides)
        self.config = config
        self._rng = random.Random(config.seed)
        self.breaker = _ClientBreaker(
            config.breaker_threshold, config.breaker_cooldown_s
        )

    # -- budget plumbing ------------------------------------------------------

    def _budget(self, deadline_s: Optional[float]) -> SolverBudget:
        limit = (
            deadline_s if deadline_s is not None else self.config.deadline_s
        )
        return SolverBudget(deadline_s=limit).start()

    @staticmethod
    def _remaining(budget: SolverBudget) -> Optional[float]:
        return budget.remaining_s

    def _deadline_error(
        self, what: str, budget: SolverBudget, last_state: object
    ) -> ClientDeadlineError:
        obs_metrics.counter("repro_client_deadlines_total").inc()
        return ClientDeadlineError(
            f"client deadline budget ({budget.deadline_s}s) exhausted "
            f"while {what}",
            last_state=last_state,
            elapsed_s=budget.elapsed_s,
        )

    # -- the core request loop ------------------------------------------------

    def _once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        timeout_s: float,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One attempt on a fresh connection; transport faults raise raw."""
        conn = http.client.HTTPConnection(
            self.config.host, self.config.port, timeout=timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            # Called inside the client.request span, so the header names
            # that span — the server's service.request links back to it.
            traceparent = obs.current_traceparent()
            if traceparent is not None:
                headers["traceparent"] = traceparent
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()  # IncompleteRead on a truncated body
            return resp.status, dict(resp.getheaders()), raw
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        budget: Optional[SolverBudget] = None,
        expect_json: bool = True,
        read_timeout_s: Optional[float] = None,
        last_state: object = None,
    ) -> Tuple[int, Dict[str, str], object]:
        """Run one logical request to completion under the retry discipline.

        Returns ``(status, headers, payload)`` where ``payload`` is the
        decoded JSON object (or raw text when ``expect_json=False``).
        Raises :class:`~repro.errors.ServerRejected` for non-retryable
        4xx, :class:`~repro.errors.ClientDeadlineError` when the budget
        runs out, and :class:`~repro.errors.ClientError` when
        ``max_attempts`` is exhausted first.  An open circuit breaker is
        waited out like any other retryable failure (its cooldown acts as
        the Retry-After), so callers see at most a deadline error, never
        a bare breaker trip.
        """
        if budget is None:
            budget = self._budget(None)
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        route = path.split("?", 1)[0]
        sleep_s = self.config.backoff_base_s
        failure: Optional[_Transport] = None
        for attempt in range(1, self.config.max_attempts + 1):
            try:
                self.breaker.allow()
            except ClientCircuitOpen as exc:
                # An open breaker is a retryable condition from this loop's
                # point of view: wait out the cooldown (budget permitting)
                # rather than making every caller handle it.
                obs_metrics.counter(
                    "repro_client_requests_total", outcome="breaker_open"
                ).inc()
                failure = _Transport(
                    str(exc),
                    retry_after_s=exc.retry_after_s,
                    transport_fault=False,
                )
                status = None
            else:
                status = self._attempt(
                    method, path, payload, route, attempt, budget,
                    expect_json, read_timeout_s, last_state,
                )
            if isinstance(status, tuple):
                return status
            if isinstance(status, _Transport):
                failure = status
                if isinstance(failure.last_state, dict):
                    last_state = failure.last_state

            # Retryable failure: back off (decorrelated jitter, floored by
            # the server's Retry-After) unless the budget cannot cover it.
            if attempt >= self.config.max_attempts:
                break
            sleep_s = min(
                self.config.backoff_cap_s,
                self._rng.uniform(self.config.backoff_base_s, sleep_s * 3.0),
            )
            delay = sleep_s
            if failure.retry_after_s is not None:
                delay = max(delay, failure.retry_after_s)
            remaining = self._remaining(budget)
            if remaining is not None and delay >= remaining:
                # Fail fast: sleeping would blow the budget anyway, and a
                # Retry-After beyond the deadline means the server itself
                # says the answer cannot arrive in time.
                raise self._deadline_error(
                    f"backing off {delay:.2f}s before retrying "
                    f"{method} {route} ({failure})",
                    budget, last_state,
                )
            obs_metrics.counter("repro_client_retries_total").inc()
            time.sleep(delay)
        raise ClientError(
            f"{method} {route} failed after "
            f"{self.config.max_attempts} attempts: {failure}"
        )

    def _attempt(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        route: str,
        attempt: int,
        budget: SolverBudget,
        expect_json: bool,
        read_timeout_s: Optional[float],
        last_state: object,
    ):
        """One wire attempt: a ``(status, headers, payload)`` tuple on
        success, a :class:`_Transport` describing a retryable failure, or
        a raised terminal error (rejection / deadline)."""
        remaining = self._remaining(budget)
        if remaining is not None and remaining <= 0.0:
            raise self._deadline_error(
                f"requesting {method} {route}", budget, last_state
            )
        timeout = (
            read_timeout_s
            if read_timeout_s is not None
            else self.config.request_timeout_s
        )
        if remaining is not None:
            timeout = min(timeout, remaining)
        try:
            with obs.span(
                "client.request", method=method, route=route,
                attempt=attempt,
            ):
                status, headers, raw = self._once(
                    method, path, payload, timeout
                )
        except (OSError, http.client.HTTPException) as exc:
            # Refused, reset, timeout, garbage status line, truncated
            # body: all transport-level, all retryable, all counted
            # against the breaker.
            self.breaker.record_failure()
            obs_metrics.counter(
                "repro_client_requests_total", outcome="transport_error"
            ).inc()
            return _Transport(f"{type(exc).__name__}: {exc}")
        self.breaker.record_success()
        decoded = self._decode(status, headers, raw, expect_json)
        if isinstance(decoded, _Transport):
            obs_metrics.counter(
                "repro_client_requests_total", outcome="bad_payload"
            ).inc()
            return decoded
        if status in _RETRYABLE_STATUSES:
            obs_metrics.counter(
                "repro_client_requests_total", outcome=f"http_{status}"
            ).inc()
            return _Transport(
                f"server answered {status}",
                retry_after_s=_retry_after(headers),
                transport_fault=False,
                last_state=decoded if isinstance(decoded, dict) else None,
            )
        if status >= 400:
            obs_metrics.counter(
                "repro_client_requests_total", outcome="rejected"
            ).inc()
            error_type = (
                decoded.get("error", "")
                if isinstance(decoded, dict) else ""
            )
            message = (
                decoded.get("message", "")
                if isinstance(decoded, dict) else str(decoded)
            )
            raise ServerRejected(
                f"{method} {route} rejected with {status} "
                f"({error_type}): {message}",
                status=status,
                error_type=error_type,
                payload=decoded,
            )
        obs_metrics.counter(
            "repro_client_requests_total", outcome="ok"
        ).inc()
        return status, headers, decoded

    @staticmethod
    def _decode(status, headers, raw: bytes, expect_json: bool):
        """Decode a response body; corruption becomes a retryable fault."""
        if not any(name.lower() == "content-length" for name in headers):
            # The service stamps Content-Length on every response.  A
            # reply without it is a header block cut off mid-stream that
            # happened to parse (read-until-close would silently accept
            # a truncated — even empty — body as complete).
            return _Transport(
                "response lacks Content-Length (truncated headers?)"
            )
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            return _Transport("response body is not UTF-8 (corrupted?)")
        content_type = headers.get("Content-Type", "")
        if not expect_json and status < 400:
            return text
        if "json" not in content_type:
            # Error pages from intermediaries (and netchaos garbage that
            # happens to parse as HTTP) are not trustworthy payloads.
            if status < 400:
                return _Transport(
                    f"expected JSON, got {content_type or 'no content type'}"
                )
            return text
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return _Transport("response claimed JSON but does not parse")

    # -- the public API -------------------------------------------------------

    def submit(
        self,
        spec: Dict[str, object],
        tenant: Optional[str] = None,
        task_deadline_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        budget_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Submit a job; returns its view.  Safe to call through any fault.

        Replay after an ambiguous failure (reset mid-response, timeout) is
        harmless: the sweep-signature job id makes the second submission
        observe the first job instead of creating a duplicate.
        """
        body = dict(spec)
        if tenant is not None:
            body["tenant"] = tenant
        if task_deadline_s is not None:
            body["task_deadline_s"] = task_deadline_s
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        _, _, view = self._request(
            "POST", "/v1/jobs", body=body, budget=self._budget(budget_s)
        )
        return view

    def status(
        self, job_id: str, budget_s: Optional[float] = None
    ) -> Dict[str, object]:
        _, _, view = self._request(
            "GET", f"/v1/jobs/{job_id}", budget=self._budget(budget_s)
        )
        return view

    def wait_for(
        self,
        job_id: str,
        budget_s: Optional[float] = None,
        target_states=TERMINAL_STATES,
        poll_wait_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Long-poll until the job reaches a target state; returns the view.

        Each round-trip passes the last seen ``revision`` as the etag, so
        the server answers immediately on any change and the client never
        misses a transition between polls.  Budget exhaustion raises
        :class:`~repro.errors.ClientDeadlineError` whose ``last_state`` is
        the freshest view fetched — a caller that timed out still knows
        whether the job was queued, running, or gone.
        """
        budget = self._budget(budget_s)
        wait = (
            poll_wait_s if poll_wait_s is not None else self.config.poll_wait_s
        )
        view: Optional[Dict[str, object]] = None
        etag: Optional[int] = None
        while True:
            remaining = self._remaining(budget)
            this_wait = wait
            if remaining is not None:
                if remaining <= 0.0:
                    raise self._deadline_error(
                        f"waiting for job {job_id}", budget, view
                    )
                this_wait = min(wait, remaining)
            query = f"wait={this_wait:.3f}"
            if etag is not None:
                query += f"&etag={etag}"
            _, _, view = self._request(
                "GET", f"/v1/jobs/{job_id}?{query}",
                budget=budget,
                # The server holds the poll open for up to this_wait; give
                # the socket that long plus the ordinary request slack.
                read_timeout_s=this_wait + self.config.request_timeout_s,
                last_state=view,
            )
            if view["state"] in target_states:
                return view
            etag = view.get("revision")

    def result(
        self, job_id: str, budget_s: Optional[float] = None
    ) -> str:
        """The completed job's result document (verified complete JSON)."""
        budget = self._budget(budget_s)
        _, _, text = self._request(
            "GET", f"/v1/jobs/{job_id}/result", budget=budget,
            expect_json=False,
        )
        try:
            json.loads(text)
        except json.JSONDecodeError as exc:
            raise ClientError(
                f"result for {job_id} is not valid JSON: {exc}"
            ) from exc
        return text

    def cancel(
        self, job_id: str, budget_s: Optional[float] = None
    ) -> Dict[str, object]:
        _, _, view = self._request(
            "DELETE", f"/v1/jobs/{job_id}", budget=self._budget(budget_s)
        )
        return view

    def artifact(
        self,
        kind: str,
        filter_index: int,
        wordlength: int,
        scaling: str = "maximal",
        representation: str = "csd",
        budget_s: Optional[float] = None,
    ) -> str:
        """One artifact's full text (truncation is retried, never served)."""
        path = (
            f"/v1/artifacts/{kind}?filter={filter_index}"
            f"&wordlength={wordlength}&scaling={scaling}"
            f"&representation={representation}"
        )
        _, _, text = self._request(
            "GET", path, budget=self._budget(budget_s), expect_json=False
        )
        return text

    def jobs(
        self,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
        budget_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """One page of the jobs listing (counts + views + ``next_cursor``)."""
        query = []
        if limit is not None:
            query.append(f"limit={limit}")
        if cursor is not None:
            query.append(f"cursor={cursor}")
        path = "/v1/jobs" + ("?" + "&".join(query) if query else "")
        _, _, page = self._request(
            "GET", path, budget=self._budget(budget_s)
        )
        return page

    def iter_jobs(
        self, page_size: int = 50, budget_s: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Walk every job view across pages (stable order, no duplicates)."""
        budget = self._budget(budget_s)
        cursor: Optional[str] = None
        while True:
            query = f"limit={page_size}"
            if cursor is not None:
                query += f"&cursor={cursor}"
            _, _, page = self._request(
                "GET", f"/v1/jobs?{query}", budget=budget
            )
            for view in page["jobs"]:
                yield view
            cursor = page.get("next_cursor")
            if not cursor:
                return

    def artifact_catalog(
        self,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
        budget_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """One page of the artifact catalog listing."""
        query = []
        if limit is not None:
            query.append(f"limit={limit}")
        if cursor is not None:
            query.append(f"cursor={cursor}")
        path = "/v1/artifacts" + ("?" + "&".join(query) if query else "")
        _, _, page = self._request(
            "GET", path, budget=self._budget(budget_s)
        )
        return page

    def submit_and_wait(
        self,
        spec: Dict[str, object],
        tenant: Optional[str] = None,
        task_deadline_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        budget_s: Optional[float] = None,
        fetch_result: bool = True,
    ) -> Tuple[Dict[str, object], Optional[str]]:
        """Submit, wait for a terminal state, optionally fetch the result.

        One shared budget covers all three phases, so the caller reasons
        about a single deadline for the whole interaction — the
        :class:`~repro.robust.SolverBudget` semantics the solver tiers
        established, propagated across the wire.
        """
        budget = self._budget(budget_s)
        view = self.submit(
            spec, tenant=tenant, task_deadline_s=task_deadline_s,
            deadline_s=deadline_s,
            budget_s=self._remaining(budget),
        )
        view = self.wait_for(view["job_id"], budget_s=self._remaining(budget))
        text = None
        if fetch_result and view["state"] == JobState.COMPLETED:
            text = self.result(
                view["job_id"], budget_s=self._remaining(budget)
            )
        return view, text

    def healthy(self) -> bool:
        """One unretried liveness probe (never raises for a dead server)."""
        try:
            status, _, _ = self._once(
                "GET", "/healthz", None, self.config.request_timeout_s
            )
            return status == 200
        except (OSError, http.client.HTTPException):
            return False


def _retry_after(headers: Dict[str, str]) -> Optional[float]:
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
