"""Deterministic artifact generation shared by the service and the CLI.

The byte-identity guarantee — an artifact fetched over HTTP equals the one
the CLI writes for the same design point — holds because both paths call
:func:`generate_artifact`, which is deterministic end to end: filter design
is deterministic, quantization is deterministic, and
:func:`~repro.eval.experiments.best_mrpf` breaks ties deterministically.
The chaos suite enforces the guarantee by diffing a served Verilog module
against a fresh ``python -m repro.eval export`` run in another process.

Artifacts are cached by content key in the active
:class:`~repro.eval.cache.DiskCache` (text entries with an integrity
trailer, so a torn cache write is quarantined and regenerated, never
served).
"""

from __future__ import annotations

from typing import Optional

from ..arch import emit_c_model, emit_verilog, to_dot
from ..errors import SpecError
from ..eval import cache as disk_cache
from ..eval.experiments import best_mrpf
from ..filters import TABLE1_SPECS, benchmark_filter
from ..obs import metrics as obs_metrics
from ..numrep import Representation
from ..quantize import ScalingScheme, quantize

__all__ = ["ARTIFACT_KINDS", "CATALOG_WORDLENGTHS", "artifact_catalog_entries",
           "artifact_key", "fetch_artifact", "generate_artifact"]

#: kind -> (emitter dispatch handled in generate_artifact, media type)
ARTIFACT_KINDS = ("verilog", "c", "dot")

#: The standard sweep wordlengths — the catalog's width axis.
CATALOG_WORDLENGTHS = (8, 12, 16, 20)

ARTIFACT_MEDIA_TYPES = {
    "verilog": "text/x-verilog",
    "c": "text/x-c",
    "dot": "text/vnd.graphviz",
}


def artifact_key(
    filter_index: int,
    wordlength: int,
    kind: str,
    scaling: ScalingScheme,
    representation: Representation,
    depth_limit: Optional[int],
    input_bits: int,
) -> str:
    """Content hash of every input that shapes the artifact bytes."""
    return disk_cache.cache_key({
        "artifact": kind,
        "filter_index": filter_index,
        "wordlength": wordlength,
        "scaling": scaling.value,
        "representation": representation.value,
        "depth_limit": depth_limit,
        "input_bits": input_bits,
    })


def artifact_catalog_entries():
    """Every (kind, filter, wordlength) the artifact endpoint can serve.

    Stable-ordered by a zero-padded ``id`` string so the listing endpoint
    can paginate with a plain string cursor; each entry carries the ready
    query URL, so clients never assemble query strings by hand.
    """
    entries = []
    for kind in ARTIFACT_KINDS:
        for filter_index in range(len(TABLE1_SPECS)):
            for wordlength in CATALOG_WORDLENGTHS:
                entries.append({
                    "id": f"{kind}:{filter_index:02d}:{wordlength:02d}",
                    "kind": kind,
                    "filter": filter_index,
                    "wordlength": wordlength,
                    "url": (
                        f"/v1/artifacts/{kind}"
                        f"?filter={filter_index}&wordlength={wordlength}"
                    ),
                })
    entries.sort(key=lambda entry: entry["id"])
    return entries


def _validate(filter_index: int, wordlength: int, kind: str) -> None:
    if kind not in ARTIFACT_KINDS:
        raise SpecError(
            f"unknown artifact kind {kind!r}; choose from {ARTIFACT_KINDS}"
        )
    if not 0 <= filter_index < len(TABLE1_SPECS):
        raise SpecError(
            f"filter index {filter_index} out of range "
            f"[0, {len(TABLE1_SPECS) - 1}]"
        )
    if wordlength < 2:
        raise SpecError(f"wordlength must be >= 2, got {wordlength}")


def generate_artifact(
    filter_index: int,
    wordlength: int,
    kind: str,
    scaling: ScalingScheme = ScalingScheme.MAXIMAL,
    representation: Representation = Representation.CSD,
    depth_limit: Optional[int] = None,
    input_bits: int = 16,
) -> str:
    """Synthesize the MRPF architecture and emit one artifact, from scratch.

    Deterministic: the same arguments produce byte-identical text in any
    process running the same code version.
    """
    _validate(filter_index, wordlength, kind)
    designed = benchmark_filter(filter_index)
    quantized = quantize(designed.folded, wordlength, scaling)
    architecture = best_mrpf(
        list(quantized.integers), wordlength, representation,
        depth_limit=depth_limit,
    )
    if kind == "verilog":
        return emit_verilog(
            architecture.netlist,
            architecture.tap_names,
            module_name=f"fir_filter_{filter_index}_w{wordlength}",
            input_bits=input_bits,
        )
    if kind == "c":
        return emit_c_model(
            architecture.netlist, architecture.tap_names,
            input_bits=input_bits,
        )
    return to_dot(
        architecture.netlist,
        architecture.tap_names,
        graph_name=f"mrpf_{filter_index}_w{wordlength}",
    )


def fetch_artifact(
    filter_index: int,
    wordlength: int,
    kind: str,
    scaling: ScalingScheme = ScalingScheme.MAXIMAL,
    representation: Representation = Representation.CSD,
    depth_limit: Optional[int] = None,
    input_bits: int = 16,
) -> str:
    """Cache-backed :func:`generate_artifact`.

    Consults the active disk cache's integrity-checked text layer first;
    a corrupt entry counts as a miss (and is quarantined by the cache), so
    this can only ever return complete artifact text.
    """
    _validate(filter_index, wordlength, kind)
    key = artifact_key(
        filter_index, wordlength, kind, scaling, representation,
        depth_limit, input_bits,
    )
    cache = disk_cache.active_cache()
    if cache is not None:
        cached = cache.get_text(key)
        if cached is not None:
            return cached
    text = generate_artifact(
        filter_index, wordlength, kind, scaling, representation,
        depth_limit, input_bits,
    )
    if cache is not None:
        try:
            cache.put_text(key, text)
        except OSError:
            # A full disk must not fail the request: the artifact text is
            # already in hand.  Count the failure the same way the sweep's
            # persistent-cache layer does.
            cache.stats.put_errors += 1
            obs_metrics.counter("repro_cache_put_errors_total").inc()
    return text
