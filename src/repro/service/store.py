"""Durable, crash-safe job store keyed by sweep signature.

The store is the single source of truth for job lifecycle; the queue holds
only ids and the HTTP layer holds nothing.  Design points:

* **Identity is content.**  A job's id is derived from
  :func:`~repro.eval.supervisor.sweep_signature` of its canonical spec, so
  submitting the same spec twice *is* the same job — resubmission returns
  the existing record (completed jobs serve their cached result
  immediately; queued/running jobs are simply observed; failed, cancelled,
  or expired jobs are requeued).  Tenant and budgets are deliberately
  excluded from identity: they describe *how* to run the job, not *what*
  the job computes.

* **Every state change is a WAL append** on a
  :class:`~repro.eval.wal.ChecksumLog` (fsync'd, checksummed,
  torn-tail-truncating), so an accepted job survives any crash of the
  server process.  Recovery folds the log last-record-wins, flips jobs
  caught ``running`` back to ``queued`` with ``resumed`` set (their sweep
  journal lets the supervisor skip completed tasks), and compacts the log
  to one record per job so it cannot grow without bound across restarts.
  Compaction itself is crash-atomic: the compacted log is written beside
  the live one and ``os.replace``'d into place (directory entry fsync'd),
  so a crash mid-compaction — including during the crash-recovery
  restarts this store exists for — leaves either the complete old log or
  the complete new one, never a truncated half-written file.

* **Results and artifacts live beside the log** under the store root,
  written atomically (tmp + ``os.replace``) so a torn result file can never
  be served.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import JobStateError, SpecError, StoreUnavailable
from ..eval.supervisor import sweep_signature
from ..eval.wal import ChecksumLog
from ..filters import TABLE1_SPECS
from ..robust.crashsim import fabric as iofabric

__all__ = ["JobRecord", "JobSpec", "JobState", "JobStore"]


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entries after a rename/create (fabric-routed)."""
    iofabric.active().fsync_dir(directory)

#: Bump when the WAL record schema changes incompatibly.
STORE_FORMAT_VERSION = 1

_RECORD_KIND = "job"


class JobState:
    """Job lifecycle states and the legal transitions between them."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    ALL = frozenset(
        {QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED, EXPIRED}
    )
    #: States a job never leaves on its own (``completed`` is terminal
    #: forever; the others can be *requeued* by an explicit resubmission).
    TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED, EXPIRED})

    #: state -> states reachable from it.
    TRANSITIONS = {
        QUEUED: frozenset({RUNNING, CANCELLED, EXPIRED}),
        # running -> queued is the crash-recovery requeue path.
        RUNNING: frozenset(
            {COMPLETED, FAILED, CANCELLED, EXPIRED, QUEUED}
        ),
        COMPLETED: frozenset(),
        FAILED: frozenset({QUEUED}),
        CANCELLED: frozenset({QUEUED}),
        EXPIRED: frozenset({QUEUED}),
    }


@dataclass(frozen=True)
class JobSpec:
    """Canonical description of *what* a job computes.

    Mirrors the parameters of
    :func:`~repro.eval.supervisor.run_sweep_supervised` that shape the task
    universe.  Everything else about a request (tenant, deadlines) lives on
    the :class:`JobRecord` because it does not change the answer.
    """

    experiments: Tuple[str, ...]
    filters: Optional[Tuple[int, ...]] = None
    wordlengths: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobSpec":
        """Validate and canonicalize a client-submitted spec dict.

        Raises :class:`~repro.errors.SpecError` for unknown keys, unknown
        experiments, out-of-range filters, and non-positive wordlengths.
        Duplicate filters/wordlengths are *rejected*, not deduplicated —
        ``filter_indices=[0, 0]`` means something different to the sweep
        (duplicate result rows), so silently collapsing it would make the
        service disagree with the CLI.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec must be an object, got {type(payload).__name__}")
        allowed = {"experiments", "filters", "wordlengths"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise SpecError(
                f"unknown spec keys {unknown}; allowed: {sorted(allowed)}"
            )
        raw_experiments = payload.get("experiments")
        if raw_experiments is not None and (
            not isinstance(raw_experiments, (list, tuple))
            or not all(isinstance(e, str) for e in raw_experiments)
            or not raw_experiments
        ):
            raise SpecError("experiments must be a non-empty list of strings")
        from ..errors import ReproError
        from ..eval.parallel import _resolve_experiment_ids

        try:
            experiments = tuple(_resolve_experiment_ids(raw_experiments))
        except SpecError:
            raise
        except ReproError as exc:
            raise SpecError(str(exc)) from exc

        filters = cls._int_axis(
            payload.get("filters"), "filters",
            valid=range(len(TABLE1_SPECS)),
        )
        wordlengths = cls._int_axis(
            payload.get("wordlengths"), "wordlengths", minimum=2
        )
        return cls(
            experiments=experiments,
            filters=filters,
            wordlengths=wordlengths,
        )

    @staticmethod
    def _int_axis(
        raw: object,
        name: str,
        valid: Optional[range] = None,
        minimum: Optional[int] = None,
    ) -> Optional[Tuple[int, ...]]:
        if raw is None:
            return None
        if not isinstance(raw, (list, tuple)) or not raw:
            raise SpecError(f"{name} must be a non-empty list of integers")
        values: List[int] = []
        for item in raw:
            if isinstance(item, bool) or not isinstance(item, int):
                raise SpecError(f"{name} must contain integers, got {item!r}")
            if valid is not None and item not in valid:
                raise SpecError(
                    f"{name} index {item} out of range "
                    f"[{valid.start}, {valid.stop - 1}]"
                )
            if minimum is not None and item < minimum:
                raise SpecError(f"{name} value {item} must be >= {minimum}")
            values.append(item)
        if len(set(values)) != len(values):
            raise SpecError(
                f"{name} contains duplicates: {values}; duplicates change "
                f"the sweep's output shape, submit distinct values"
            )
        return tuple(values)

    def signature(self) -> str:
        """The sweep-signature content hash this job is keyed by."""
        return sweep_signature(
            list(self.experiments),
            list(self.filters) if self.filters is not None else None,
            list(self.wordlengths) if self.wordlengths is not None else None,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiments": list(self.experiments),
            "filters": list(self.filters) if self.filters else None,
            "wordlengths": (
                list(self.wordlengths) if self.wordlengths else None
            ),
        }


@dataclass
class JobRecord:
    """One job's full durable state (a WAL record is its ``as_dict``)."""

    job_id: str
    spec: JobSpec
    tenant: str
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    updated_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Times this job entered ``running`` (across requeues and restarts).
    attempts: int = 0
    #: True when a server restart requeued this job mid-run.
    resumed: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    task_deadline_s: float = 30.0
    deadline_s: float = 300.0
    #: Wall-clock time (``time.time()``) past which the reaper expires it;
    #: set at submit, so ``deadline_s`` covers queue wait plus run time.
    expires_at: Optional[float] = None
    #: True when a requested budget exceeded a server ceiling and was cut.
    clamped: bool = False
    quarantined: int = 0
    pool_rebuilds: int = 0
    retries: int = 0
    #: Distributed-trace identity adopted by every run of this job.  Set
    #: from the submitting request's context and persisted, so a restarted
    #: server resumes the job inside the *same* trace; ``trace_link`` is
    #: the submitting span as ``[pid, span_id]``.
    trace_id: Optional[str] = None
    trace_link: Optional[List[int]] = None
    #: Monotonic per-job change counter, bumped on every durable state
    #: change.  Serves as the ETag for the long-poll status endpoint: a
    #: client that saw revision N asks "wake me when revision != N".
    revision: int = 1

    def as_dict(self) -> Dict[str, object]:
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "spec"
        }
        payload["spec"] = self.spec.as_dict()
        payload["kind"] = _RECORD_KIND
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobRecord":
        data = {k: v for k, v in payload.items() if k != "kind"}
        data["spec"] = JobSpec.from_dict(data["spec"])
        return cls(**data)

    def public_view(self) -> Dict[str, object]:
        """The JSON shape returned by the status endpoint."""
        view = self.as_dict()
        del view["kind"]
        return view


class JobStore:
    """WAL-backed job table plus atomic result/artifact storage."""

    def __init__(
        self,
        root: os.PathLike,
        clock: Callable[[], float] = time.time,
        fault_injector: Optional[object] = None,
    ) -> None:
        self.root = Path(root)
        iofabric.active().makedirs_durable(self.root)
        self._clock = clock
        self._lock = threading.RLock()
        #: Signalled on every durable state change; the long-poll endpoint
        #: waits on it instead of hot-polling the table.
        self._changed = threading.Condition(self._lock)
        #: Chaos hook (``StoreFaultInjector``): consulted before each WAL
        #: append so tests can fail writes deterministically.
        self.fault_injector = fault_injector
        #: WAL appends that failed and were rolled back (never acknowledged).
        self.append_errors = 0
        self._jobs: Dict[str, JobRecord] = {}
        self._log = self._recover()

    # -- recovery -------------------------------------------------------------

    @property
    def log_path(self) -> Path:
        return self.root / "jobs.wal"

    @staticmethod
    def _header() -> Dict[str, object]:
        return {"format": STORE_FORMAT_VERSION, "store": "jobs"}

    def _reap_stale_tmp(self) -> int:
        """Remove temp-file debris a crash left beside durable data.

        Covers mid-flight result/artifact writes (``.{job_id}.*.tmp``,
        ``.tmp-*``) — their ``os.replace`` never happened, so they are
        invisible to every reader and safe to delete.  The compaction temp
        (``jobs.wal.compact``) is *not* reaped here: compaction recreates
        and atomically renames it as part of this same recovery.
        """
        fab = iofabric.active()
        reaped = 0
        for directory in (self.results_dir, self.artifacts_dir):
            if not directory.is_dir():
                continue
            for pattern in (".*.tmp", ".tmp-*"):
                for stale in sorted(directory.glob(pattern)):
                    try:
                        fab.unlink(stale)
                        reaped += 1
                    except OSError:
                        pass
        return reaped

    def _recover(self) -> ChecksumLog:
        """Replay the WAL, requeue interrupted jobs, compact, reopen."""
        self._reap_stale_tmp()
        log, records = ChecksumLog.resume(self.log_path, self._header())
        for raw in records:
            if raw.get("kind") != _RECORD_KIND:
                continue
            record = JobRecord.from_dict(raw)
            self._jobs[record.job_id] = record  # last record wins
        log.close()

        requeued = 0
        now = self._clock()
        for record in self._jobs.values():
            if record.state == JobState.RUNNING:
                # The previous server died mid-job.  The sweep journal holds
                # every task outcome that reached disk, so requeue and let
                # the supervisor's --resume path skip the finished work.
                record.state = JobState.QUEUED
                record.resumed = True
                record.updated_at = now
                record.revision += 1
                requeued += 1
            if record.state == JobState.QUEUED:
                # The deadline clock restarts with the server: a surviving
                # job must not be instantly expired for downtime it could
                # do nothing about.
                record.expires_at = now + record.deadline_s
                record.updated_at = now

        # Compact: one record per job bounds WAL growth across restarts.
        # Never truncate the live log in place — a crash mid-compaction
        # would lose every job.  Write the compacted log beside it (every
        # append fsync'd) and atomically rename it over the old one.
        fab = iofabric.active()
        tmp_path = self.log_path.with_name(self.log_path.name + ".compact")
        try:
            compacted = ChecksumLog.create(tmp_path, self._header())
            try:
                for job_id in sorted(self._jobs):
                    compacted.append(self._jobs[job_id].as_dict())
            finally:
                compacted.close()
            fab.replace(tmp_path, self.log_path)
            _fsync_dir(self.log_path.parent)
        except OSError:
            # ENOSPC (or any IO failure) mid-compaction must not take the
            # store down: the live log is untouched until the atomic
            # rename, so drop the half-written temp and keep serving —
            # compaction simply retries on the next restart.
            try:
                fab.unlink(tmp_path)
            except OSError:
                pass
            from ..obs import metrics as obs_metrics

            obs_metrics.counter(
                "repro_service_compaction_errors_total"
            ).inc()
        log, _ = ChecksumLog.resume(self.log_path, self._header())
        if requeued:
            from ..obs import metrics as obs_metrics

            obs_metrics.counter("repro_service_jobs_resumed_total").inc(
                requeued
            )
        return log

    # -- submission and lifecycle ---------------------------------------------

    def _append_locked(self, record: JobRecord) -> None:
        """One WAL append, chaos hook included; raises ``OSError`` raw.

        Callers are responsible for rolling the in-memory table back when
        this raises — a record that never reached the WAL must never be
        visible, or a crash would silently lose an "accepted" job.
        """
        injector = self.fault_injector
        if injector is not None:
            fault = injector.draw_append(record.job_id)
            if fault == "enospc":
                raise injector.enospc_error(record.job_id)
        self._log.append(record.as_dict())

    def _rollback_append_error(
        self, job_id: str, previous: Optional[JobRecord], exc: OSError
    ) -> StoreUnavailable:
        """Undo an in-memory update whose WAL append failed; build the 503."""
        if previous is None:
            self._jobs.pop(job_id, None)
        else:
            self._jobs[job_id] = previous
        self.append_errors += 1
        from ..obs import metrics as obs_metrics

        obs_metrics.counter("repro_service_wal_errors_total").inc()
        return StoreUnavailable(
            f"job store cannot persist {job_id}: {exc}", retry_after_s=5.0
        )

    def submit(
        self,
        spec: JobSpec,
        tenant: str,
        task_deadline_s: float,
        deadline_s: float,
        clamped: bool = False,
        trace_id: Optional[str] = None,
        trace_link: Optional[List[int]] = None,
    ) -> Tuple[JobRecord, bool]:
        """Idempotently register a job; returns ``(record, needs_enqueue)``.

        Same spec → same job id.  A job already queued, running, or
        completed is returned as-is (``needs_enqueue=False``); a job in a
        retryable terminal state (failed/cancelled/expired) is requeued
        with fresh budgets.  ``expires_at`` starts ticking *here*: the job
        deadline covers queue wait plus run time, so a job stuck behind a
        long backlog is expired by the reaper rather than waiting forever
        (recovery restarts the clock — see :meth:`_recover`).

        ``trace_id``/``trace_link`` stamp the submitting request's trace
        context onto the record (fresh on a terminal-state resubmission,
        untouched on an idempotent hit — the live run keeps its trace).
        """
        signature = spec.signature()
        job_id = f"job-{signature[:16]}"
        now = self._clock()
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.state in (
                    JobState.QUEUED,
                    JobState.RUNNING,
                    JobState.COMPLETED,
                ):
                    return existing, False
                # failed / cancelled / expired: explicit resubmission is
                # the retry mechanism.
                return (
                    self._transition_locked(
                        job_id,
                        JobState.QUEUED,
                        tenant=tenant,
                        task_deadline_s=task_deadline_s,
                        deadline_s=deadline_s,
                        clamped=clamped,
                        error=None,
                        error_type=None,
                        started_at=None,
                        finished_at=None,
                        expires_at=now + deadline_s,
                        resumed=False,
                        trace_id=trace_id,
                        trace_link=trace_link,
                    ),
                    True,
                )
            record = JobRecord(
                job_id=job_id,
                spec=spec,
                tenant=tenant,
                state=JobState.QUEUED,
                submitted_at=now,
                updated_at=now,
                task_deadline_s=task_deadline_s,
                deadline_s=deadline_s,
                expires_at=now + deadline_s,
                clamped=clamped,
                trace_id=trace_id,
                trace_link=trace_link,
            )
            self._jobs[job_id] = record
            try:
                self._append_locked(record)
            except OSError as exc:
                # ENOSPC hardening: the job was never acknowledged, so it
                # must not survive in memory either — a client retry after
                # the 503 resubmits from scratch, exactly once.
                raise self._rollback_append_error(job_id, None, exc) from exc
            self._changed.notify_all()
            return record, True

    def transition(self, job_id: str, state: str, **updates) -> JobRecord:
        """Durably move a job to ``state``; raises on illegal transitions."""
        with self._lock:
            return self._transition_locked(job_id, state, **updates)

    def _transition_locked(
        self, job_id: str, state: str, **updates
    ) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobStateError(f"unknown job {job_id!r}")
        if state not in JobState.ALL:
            raise JobStateError(f"unknown state {state!r}")
        if state not in JobState.TRANSITIONS[record.state]:
            raise JobStateError(
                f"job {job_id} cannot go {record.state} -> {state}"
            )
        updated = replace(
            record, state=state, updated_at=self._clock(),
            revision=record.revision + 1, **updates,
        )
        self._jobs[job_id] = updated
        try:
            self._append_locked(updated)
        except OSError as exc:
            raise self._rollback_append_error(job_id, record, exc) from exc
        self._changed.notify_all()
        return updated

    # -- queries --------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise JobStateError(f"unknown job {job_id!r}")
            return record

    def wait_for_change(
        self,
        job_id: str,
        etag: Optional[int],
        timeout_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> JobRecord:
        """Block until ``job_id``'s revision differs from ``etag``.

        The long-poll primitive: returns the current record immediately
        when the caller's ``etag`` is stale (or ``None``), otherwise waits
        on the store's change condition up to ``timeout_s`` and returns
        whatever the record is then — the caller compares revisions to
        distinguish "changed" from "timed out unchanged".  Unknown jobs
        raise :class:`~repro.errors.JobStateError` up front, so a client
        never long-polls a job that does not exist.
        """
        deadline = clock() + max(0.0, timeout_s)
        with self._changed:
            while True:
                record = self._jobs.get(job_id)
                if record is None:
                    raise JobStateError(f"unknown job {job_id!r}")
                if etag is None or record.revision != etag:
                    return record
                remaining = deadline - clock()
                if remaining <= 0.0:
                    return record
                self._changed.wait(timeout=remaining)

    def list_jobs(self) -> List[JobRecord]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def jobs_in(self, *states: str) -> List[JobRecord]:
        wanted = frozenset(states)
        with self._lock:
            return [
                self._jobs[k]
                for k in sorted(self._jobs)
                if self._jobs[k].state in wanted
            ]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            result = {state: 0 for state in sorted(JobState.ALL)}
            for record in self._jobs.values():
                result[record.state] += 1
            return result

    # -- results and artifacts ------------------------------------------------

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def write_result(self, job_id: str, text: str) -> Path:
        """Atomically persist a job's result document (tmp + rename).

        Durable end to end: the temp file's bytes are fsync'd, the rename
        is made durable by fsyncing the results *directory* — without that
        last step the new entry lives only in the directory's page cache
        and a power loss can leave a ``completed`` job with no result file.
        """
        fab = iofabric.active()
        target = self._result_path(job_id)
        fab.makedirs_durable(target.parent)
        fh, tmp_name = fab.mkstemp(
            target.parent, prefix=f".{job_id}.", suffix=".tmp"
        )
        try:
            with fh:
                fh.write(text)
                fab.fsync(fh)
            fab.replace(tmp_name, target)
            _fsync_dir(target.parent)
        except BaseException:
            try:
                fab.unlink(tmp_name)
            except OSError:
                pass
            raise
        fab.ack("store.result", path=str(target), job_id=job_id)
        return target

    def read_result(self, job_id: str) -> str:
        """The stored result text; raises for jobs without one."""
        record = self.get(job_id)
        if record.state != JobState.COMPLETED:
            raise JobStateError(
                f"job {job_id} is {record.state}, not completed; "
                f"no result is available"
            )
        path = self._result_path(job_id)
        if not path.exists():
            raise JobStateError(
                f"job {job_id} is completed but its result file is missing"
            )
        return path.read_text(encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            self._log.close()
