"""Admission control: load shedding, Retry-After estimation, circuit breaking.

The service must refuse work it cannot finish, and refuse it *cheaply* —
before a job record is written or a worker pool touched.  Three mechanisms:

* **Depth-based shedding** — :meth:`AdmissionController.admit` rejects when
  the queue (or the tenant's share of it) is full, raising
  :class:`~repro.errors.AdmissionRejected` which the HTTP layer maps to a
  429.

* **Informed Retry-After** — rejections carry a server-side estimate of
  when capacity frees up, derived from an EWMA of observed job durations
  scaled by the current backlog.  Clients that honor it re-arrive roughly
  when the queue has drained instead of hammering a saturated server.

* **Circuit breaker** — repeated ``BrokenProcessPool`` rebuilds inside a
  sliding window mean the execution substrate itself is sick (OOM pressure,
  a poisoned cache, a runaway chaos plan); admitting more jobs only feeds
  the failure.  The breaker opens for a cooldown (503 with Retry-After),
  then half-opens to let a probe job through; a clean run closes it.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Optional

from ..errors import AdmissionRejected, CircuitOpen, ServiceError
from ..obs import metrics as obs_metrics
from .queue import FairQueue, QueueFull

__all__ = ["AdmissionController", "CircuitBreaker", "DurationEwma"]


class DurationEwma:
    """Exponentially weighted moving average of job durations (seconds)."""

    def __init__(self, alpha: float = 0.3, initial: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ServiceError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial
        self._observed = False
        self._lock = threading.Lock()

    def observe(self, duration_s: float) -> None:
        with self._lock:
            if not self._observed:
                self._value = duration_s
                self._observed = True
            else:
                self._value += self.alpha * (duration_s - self._value)

    @property
    def value(self) -> float:
        """Current estimate (the optimistic prior until first observation)."""
        with self._lock:
            return self._value


class CircuitBreaker:
    """Sliding-window breaker over worker-pool rebuild events.

    States: ``closed`` (normal), ``open`` (shedding until the cooldown
    elapses), ``half-open`` (cooldown elapsed; jobs are admitted as probes
    and the first clean completion closes the breaker, while any further
    rebuild re-opens it immediately).
    """

    def __init__(
        self,
        threshold: int = 3,
        window_s: float = 60.0,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ServiceError(f"threshold must be >= 1, got {threshold}")
        if window_s <= 0.0 or cooldown_s <= 0.0:
            raise ServiceError("window_s and cooldown_s must be > 0")
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._events = []  # (monotonic time, rebuild count)
        self._opened_at: Optional[float] = None
        self._half_open = False

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        self._events = [(t, n) for t, n in self._events if t >= cutoff]

    def record_rebuilds(self, count: int) -> None:
        """Fold one job's pool-rebuild count into the window; may trip."""
        if count <= 0:
            return
        with self._lock:
            now = self._clock()
            self._events.append((now, count))
            self._prune(now)
            total = sum(n for _, n in self._events)
            if self._half_open or total >= self.threshold:
                # A rebuild during the half-open probe re-opens immediately;
                # in closed state the window total must cross the threshold.
                if self._opened_at is None or self._half_open:
                    obs_metrics.counter(
                        "repro_service_breaker_trips_total"
                    ).inc()
                self._opened_at = now
                self._half_open = False

    def record_success(self) -> None:
        """A job finished without rebuilds; closes a half-open breaker."""
        with self._lock:
            if self._half_open:
                self._half_open = False
                self._opened_at = None
                self._events.clear()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked(self._clock())

    def _state_locked(self, now: float) -> str:
        if self._half_open:
            return "half-open"
        if self._opened_at is None:
            return "closed"
        if now - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> None:
        """Raise :class:`~repro.errors.CircuitOpen` while the breaker is open.

        Transitions open → half-open as a side effect once the cooldown has
        elapsed, so exactly this call sequence defines the probe window.
        """
        with self._lock:
            now = self._clock()
            state = self._state_locked(now)
            if state == "open":
                remaining = self.cooldown_s - (now - self._opened_at)
                raise CircuitOpen(
                    f"worker-pool circuit breaker is open for another "
                    f"{remaining:.1f}s after repeated pool rebuilds",
                    retry_after_s=max(1.0, remaining),
                )
            if state == "half-open" and not self._half_open:
                self._half_open = True
                self._opened_at = None


class AdmissionController:
    """Front door of the job service: admit, shed, or break the circuit.

    Tracks in-flight jobs and a duration EWMA (fed by the dispatcher via
    :meth:`job_started`/:meth:`job_finished`) so rejections can tell the
    client when to come back instead of a bare 429.
    """

    #: Retry-After clamp, seconds — never tell a client "0" (thundering
    #: herd) and never more than 10 minutes (the estimate is a heuristic).
    MIN_RETRY_AFTER_S = 1.0
    MAX_RETRY_AFTER_S = 600.0

    def __init__(
        self,
        queue: FairQueue,
        breaker: CircuitBreaker,
        max_inflight: int = 1,
        ewma: Optional[DurationEwma] = None,
    ) -> None:
        if max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.queue = queue
        self.breaker = breaker
        self.max_inflight = max_inflight
        self.durations = ewma if ewma is not None else DurationEwma()
        self._lock = threading.Lock()
        self._inflight = 0

    # -- dispatcher callbacks ------------------------------------------------

    def job_started(self) -> None:
        with self._lock:
            self._inflight += 1
        obs_metrics.gauge("repro_service_inflight").set(self.inflight)

    def job_finished(self, duration_s: float, pool_rebuilds: int) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
        obs_metrics.gauge("repro_service_inflight").set(self.inflight)
        self.durations.observe(max(duration_s, 0.0))
        obs_metrics.histogram("repro_service_job_seconds").observe(
            max(duration_s, 0.0)
        )
        if pool_rebuilds > 0:
            self.breaker.record_rebuilds(pool_rebuilds)
        else:
            self.breaker.record_success()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- admission -----------------------------------------------------------

    def retry_after_s(self) -> float:
        """Estimated seconds until capacity frees for one more job.

        Backlog (queued + in-flight + the caller's prospective job) times
        the per-job duration estimate, divided by the service's concurrency.
        """
        backlog = self.queue.depth() + self.inflight + 1
        estimate = self.durations.value * backlog / self.max_inflight
        return min(
            max(self.MIN_RETRY_AFTER_S, math.ceil(estimate)),
            self.MAX_RETRY_AFTER_S,
        )

    def admit(self, tenant: str) -> None:
        """Check every admission gate; raises instead of returning False.

        Raises :class:`~repro.errors.CircuitOpen` when the breaker is open
        and :class:`~repro.errors.AdmissionRejected` when the queue (or the
        tenant's share) is full.  The queue's own cap still backstops the
        race between concurrent admits — callers must handle
        :class:`~repro.service.queue.QueueFull` from ``push`` the same way.
        """
        self.breaker.allow()
        depth = self.queue.depth()
        if depth >= self.queue.max_depth:
            obs_metrics.counter(
                "repro_service_rejected_total", reason="queue_full"
            ).inc()
            obs_metrics.counter(
                "repro_service_tenant_rejected_total",
                tenant=tenant, reason="queue_full",
            ).inc()
            raise AdmissionRejected(
                f"queue is full ({depth}/{self.queue.max_depth} jobs)",
                retry_after_s=self.retry_after_s(),
            )
        per_tenant = self.queue.max_depth_per_tenant
        if per_tenant is not None and self.queue.depth(tenant) >= per_tenant:
            obs_metrics.counter(
                "repro_service_rejected_total", reason="tenant_full"
            ).inc()
            obs_metrics.counter(
                "repro_service_tenant_rejected_total",
                tenant=tenant, reason="tenant_full",
            ).inc()
            raise AdmissionRejected(
                f"tenant {tenant!r} is at its queue limit ({per_tenant})",
                retry_after_s=self.retry_after_s(),
            )

    def translate_queue_full(self, exc: QueueFull) -> AdmissionRejected:
        """Dress a racing ``push`` failure in admission-rejection clothes."""
        obs_metrics.counter(
            "repro_service_rejected_total", reason="queue_full"
        ).inc()
        return AdmissionRejected(str(exc), retry_after_s=self.retry_after_s())
