"""Optional FastAPI front end for :class:`~repro.service.SynthesisService`.

The stdlib ``http.server`` front end in :mod:`repro.service.app` is the
canonical one — always available, no dependencies.  Deployments that
already run a FastAPI/uvicorn stack can mount the *same engine* behind the
same routes with :func:`build_app`; the engine object is shared, so both
front ends expose identical semantics (idempotent submission, 429 with
``Retry-After``, byte-identical artifacts).

FastAPI is an extra (``pip install repro-mrpf[service]``), never a hard
dependency: importing this module without it installed raises
:class:`~repro.errors.ServiceError` with an actionable message, and the
rest of :mod:`repro.service` works untouched.
"""

from __future__ import annotations

from ..errors import (
    AdmissionRejected,
    JobStateError,
    ServiceError,
    SpecError,
)
from .app import SynthesisService
from .artifacts import ARTIFACT_KINDS

__all__ = ["build_app"]

try:  # pragma: no cover - exercised only when fastapi is installed
    from fastapi import FastAPI, Request, Response
    from fastapi.responses import JSONResponse, PlainTextResponse

    _FASTAPI_AVAILABLE = True
except ImportError:  # pragma: no cover - the default in this environment
    FastAPI = None  # type: ignore[assignment]
    _FASTAPI_AVAILABLE = False


def build_app(service: SynthesisService):
    """Return a FastAPI app wrapping ``service``; raises without fastapi."""
    if not _FASTAPI_AVAILABLE:
        raise ServiceError(
            "fastapi is not installed; install the [service] extra or use "
            "the stdlib server (python -m repro.eval serve)"
        )

    app = FastAPI(title="repro synthesis service")

    def _error(status: int, exc: Exception) -> JSONResponse:
        headers = {}
        if isinstance(exc, AdmissionRejected):
            headers["Retry-After"] = str(int(exc.retry_after_s))
        return JSONResponse(
            status_code=status,
            content={"error": type(exc).__name__, "message": str(exc)},
            headers=headers,
        )

    @app.exception_handler(ServiceError)
    async def _service_error(request: Request, exc: ServiceError):
        if isinstance(exc, SpecError):
            return _error(400, exc)
        if isinstance(exc, AdmissionRejected):
            from ..errors import CircuitOpen

            return _error(503 if isinstance(exc, CircuitOpen) else 429, exc)
        if isinstance(exc, JobStateError):
            return _error(404 if "unknown job" in str(exc) else 409, exc)
        return _error(400, exc)

    @app.post("/v1/jobs")
    async def submit(payload: dict):
        view, created = service.submit(payload)
        return JSONResponse(status_code=201 if created else 200, content=view)

    @app.get("/v1/jobs")
    async def overview():
        return service.jobs_overview()

    @app.get("/v1/jobs/{job_id}")
    async def status(job_id: str):
        return service.status(job_id)

    @app.delete("/v1/jobs/{job_id}")
    async def cancel(job_id: str):
        return service.cancel(job_id)

    @app.get("/v1/jobs/{job_id}/result")
    async def result(job_id: str):
        return Response(
            content=service.result(job_id), media_type="application/json"
        )

    @app.get("/v1/artifacts/{kind}")
    async def artifact(
        kind: str,
        filter: int,
        wordlength: int,
        scaling: str = "maximal",
        representation: str = "csd",
    ):
        if kind not in ARTIFACT_KINDS:
            raise SpecError(
                f"unknown artifact kind {kind!r}; choose from "
                f"{ARTIFACT_KINDS}"
            )
        text, media_type = service.artifact(
            kind, filter, wordlength, scaling=scaling,
            representation=representation,
        )
        return Response(content=text, media_type=media_type)

    @app.get("/healthz")
    async def healthz():
        return PlainTextResponse("ok\n")

    @app.get("/readyz")
    async def readyz():
        if service.ready():
            return PlainTextResponse("ready\n")
        return PlainTextResponse("not ready\n", status_code=503)

    @app.get("/metrics")
    async def metrics():
        from ..obs.metrics import DEFAULT_REGISTRY

        return PlainTextResponse(
            DEFAULT_REGISTRY.exposition(),
            media_type="text/plain; version=0.0.4",
        )

    return app
