"""The synthesis job service: engine, dispatcher, and stdlib HTTP front end.

Layering (each piece is independently testable):

* :class:`SynthesisService` — the engine.  Owns the durable
  :class:`~repro.service.store.JobStore`, the
  :class:`~repro.service.queue.FairQueue`, the
  :class:`~repro.service.admission.AdmissionController`, the deadline
  :class:`~repro.service.budgets.Reaper`, and the dispatcher threads that
  run accepted jobs through
  :func:`~repro.eval.supervisor.run_sweep_supervised`.  It knows nothing
  about HTTP.

* :class:`ServiceHTTPHandler` on a ``ThreadingHTTPServer`` — a thin
  translation layer: JSON in/out, exception type → status code,
  ``Retry-After`` from :class:`~repro.errors.AdmissionRejected`.  An
  optional FastAPI adapter (:mod:`repro.service.fastapi_adapter`) mounts
  the same engine behind the same routes when that stack is installed;
  the stdlib server is always available.

Crash safety is inherited, not reimplemented: job lifecycle lives in the
store's WAL, per-task progress lives in the supervisor's sweep journal, and
the dispatcher always runs with ``resume=True`` — so a job interrupted by
``SIGKILL`` of the whole server is requeued on restart and only recomputes
the tasks whose outcomes never reached disk.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import obs
from ..errors import (
    AdmissionRejected,
    CircuitOpen,
    JobStateError,
    ReproError,
    ServiceError,
    SpecError,
    StoreUnavailable,
    SweepAborted,
)
from ..eval import cache as disk_cache
from ..eval.export import sweep_to_json
from ..eval.supervisor import run_sweep_supervised
from ..numrep import Representation
from ..obs import metrics as obs_metrics
from ..quantize import ScalingScheme
from .admission import AdmissionController, CircuitBreaker
from .artifacts import (
    ARTIFACT_KINDS,
    ARTIFACT_MEDIA_TYPES,
    artifact_catalog_entries,
    fetch_artifact,
)
from .budgets import BudgetPolicy, Reaper
from .queue import FairQueue, QueueFull
from .store import JobSpec, JobState, JobStore

__all__ = [
    "ServiceConfig",
    "ServiceHTTPHandler",
    "SynthesisService",
    "make_server",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of one service instance, in one place."""

    data_dir: Path
    cache_dir: Optional[Path] = None
    host: str = "127.0.0.1"
    port: int = 8177
    #: Worker processes per running sweep (the supervisor's ``jobs``).
    sweep_jobs: int = 2
    #: Concurrently *running* jobs (dispatcher threads).
    max_inflight: int = 1
    max_queue_depth: int = 16
    max_queue_depth_per_tenant: Optional[int] = 8
    budgets: BudgetPolicy = field(default_factory=BudgetPolicy)
    breaker_threshold: int = 3
    breaker_window_s: float = 60.0
    breaker_cooldown_s: float = 30.0
    reaper_interval_s: float = 0.5
    #: Seconds a SIGTERM drain waits for running jobs before giving up.
    drain_grace_s: float = 30.0
    #: Supervisor retry budget per job.
    max_retries: int = 2
    #: Ceiling on the ``wait=`` a long-poll status request may ask for.
    long_poll_max_s: float = 30.0
    #: Page size served when a paginated listing names no ``limit``, and
    #: the ceiling a requested ``limit`` is clamped to.
    page_limit_default: int = 100
    page_limit_max: int = 500
    #: Optional process-level fault plan threaded into every sweep
    #: (chaos tests only; never set in production configs).
    chaos: Optional[object] = None
    #: Optional :class:`~repro.robust.chaos.StoreFaultInjector` failing
    #: WAL appends (chaos tests only).
    store_chaos: Optional[object] = None

    @property
    def journal_dir(self) -> Path:
        return Path(self.data_dir) / "journals"

    @property
    def store_dir(self) -> Path:
        return Path(self.data_dir) / "jobs"


class SynthesisService:
    """The HTTP-agnostic job engine (store + queue + dispatchers + reaper)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        # /metrics must carry the full series vocabulary from the first
        # scrape (the CI gate asserts series exist at 0, not only after
        # their first increment).
        obs.predeclare_metrics()
        if config.cache_dir is not None:
            # Configure the process-wide cache exactly once, here, and pass
            # cache_dir=None to every sweep: per-job reconfiguration would
            # race between concurrent dispatcher threads.
            disk_cache.configure(config.cache_dir)
        self.store = JobStore(
            config.store_dir, fault_injector=config.store_chaos
        )
        self.queue = FairQueue(
            config.max_queue_depth, config.max_queue_depth_per_tenant
        )
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            window_s=config.breaker_window_s,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.admission = AdmissionController(
            self.queue, self.breaker, max_inflight=config.max_inflight
        )
        self.reaper = Reaper(
            sweep=lambda: self.store.jobs_in(
                JobState.QUEUED, JobState.RUNNING
            ),
            expire=lambda job_id: self.store.transition(
                job_id, JobState.EXPIRED,
                error="job deadline exceeded", error_type="Expired",
                finished_at=time.time(),
            ),
            interval_s=config.reaper_interval_s,
        )
        self._dispatchers: List[threading.Thread] = []
        self._draining = threading.Event()
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Re-enqueue surviving jobs and start worker threads."""
        if self._started:
            return
        self._started = True
        # Jobs the store recovered as queued (including running jobs the
        # last process left behind) re-enter the queue before we accept
        # new traffic — no accepted job is ever lost to a restart.
        for record in self.store.jobs_in(JobState.QUEUED):
            try:
                self.queue.push(record.tenant, record.job_id)
            except QueueFull:
                # More surviving jobs than queue slots: the rest stay
                # durably queued and are picked up as slots free (the
                # dispatcher re-enqueues from the store when it idles).
                break
        self.reaper.start()
        for index in range(self.config.max_inflight):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-service-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)

    def drain(self, grace_s: Optional[float] = None) -> bool:
        """Stop accepting work, wait for running jobs; True when clean.

        Queued jobs stay durably queued for the next start; running jobs
        get ``grace_s`` to finish.  Returns ``False`` when the grace period
        expired with jobs still running (the caller maps that to the
        partial-result exit code).
        """
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self._draining.set()
        self.queue.close()
        deadline = time.monotonic() + grace
        for thread in self._dispatchers:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(timeout=remaining)
        clean = not any(t.is_alive() for t in self._dispatchers)
        self.reaper.stop()
        self.store.close()
        return clean

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- request operations ----------------------------------------------------

    def submit(self, payload: Dict[str, object]) -> Tuple[Dict[str, object], bool]:
        """Admit and durably register a job; returns ``(view, created)``.

        Idempotent: an identical spec maps to the same job id, and a job
        already queued/running/completed is returned without re-admission
        (observing an existing job must never be shed by a full queue).
        """
        if not isinstance(payload, dict):
            raise SpecError("request body must be a JSON object")
        tenant = payload.pop("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise SpecError("tenant must be a non-empty string")
        requested_task = payload.pop("task_deadline_s", None)
        requested_job = payload.pop("deadline_s", None)
        spec = JobSpec.from_dict(payload)
        task_deadline, job_deadline, clamped = self.config.budgets.resolve(
            _number_or_none(requested_task, "task_deadline_s"),
            _number_or_none(requested_job, "deadline_s"),
        )

        # Peek before admission: re-observing an existing live or completed
        # job is free and must not be load-shed.
        signature = spec.signature()
        job_id = f"job-{signature[:16]}"
        try:
            existing = self.store.get(job_id)
        except JobStateError:
            existing = None
        if existing is not None and existing.state in (
            JobState.QUEUED, JobState.RUNNING, JobState.COMPLETED
        ):
            return existing.public_view(), False

        self.admission.admit(tenant)
        # The submitting request's trace context becomes the job's durable
        # identity: every later run — on this server or a restarted one —
        # adopts it, so the whole job stays one trace.
        ctx = obs.current_context()
        record, needs_enqueue = self.store.submit(
            spec, tenant, task_deadline, job_deadline, clamped=clamped,
            trace_id=ctx.trace_id if ctx is not None else None,
            trace_link=(
                list(ctx.link) if ctx is not None and ctx.link else None
            ),
        )
        if needs_enqueue:
            try:
                self.queue.push(record.tenant, record.job_id)
            except QueueFull as exc:
                # Lost the race with concurrent admits.  The job stays
                # durably queued; it will be re-enqueued by an idle
                # dispatcher or the next restart, so tell the client it
                # was accepted rather than shedding an already-durable job.
                obs.event(
                    "service.enqueue_race", job_id=record.job_id,
                    scope=exc.scope,
                )
        obs_metrics.counter("repro_service_admitted_total").inc()
        obs_metrics.counter(
            "repro_service_tenant_admitted_total", tenant=tenant
        ).inc()
        return record.public_view(), needs_enqueue

    def status(
        self,
        job_id: str,
        wait_s: Optional[float] = None,
        etag: Optional[int] = None,
    ) -> Dict[str, object]:
        """One job's view; with ``wait_s`` + ``etag``, long-poll for change.

        A client that saw revision ``etag`` blocks up to ``wait_s``
        (clamped to the server's ceiling) until the job's revision moves,
        then gets the fresh view — or the unchanged one after the timeout,
        which the client detects by comparing ``revision``.  Either way the
        response is a complete view, so a dropped long-poll costs nothing:
        the revision in hand is the resume token for the next one.
        """
        if wait_s is None:
            return self.store.get(job_id).public_view()
        wait = min(max(0.0, wait_s), self.config.long_poll_max_s)
        return self.store.wait_for_change(job_id, etag, wait).public_view()

    def _clamp_limit(self, limit: Optional[int]) -> int:
        if limit is None:
            return self.config.page_limit_default
        if limit < 1:
            raise SpecError(f"limit must be >= 1, got {limit}")
        return min(limit, self.config.page_limit_max)

    def jobs_overview(
        self,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Dict[str, object]:
        """Counts plus one stable-ordered page of job views.

        Jobs are ordered by id (the order ``list_jobs`` guarantees), the
        cursor is the last id of the previous page, and ``next_cursor`` is
        ``None`` on the final page — insertion or completion of other jobs
        between pages can never skip or duplicate an id the client already
        walked past.
        """
        page_size = self._clamp_limit(limit)
        records = self.store.list_jobs()
        if cursor:
            records = [r for r in records if r.job_id > cursor]
        page = records[:page_size]
        next_cursor = (
            page[-1].job_id if len(records) > page_size and page else None
        )
        return {
            "counts": self.store.counts(),
            "queue_depth": self.queue.depth(),
            "inflight": self.admission.inflight,
            "jobs": [r.public_view() for r in page],
            "next_cursor": next_cursor,
        }

    def artifact_catalog(
        self,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Dict[str, object]:
        """A stable-ordered page of the addressable artifact space.

        Enumerates every ``kind × filter × wordlength`` combination the
        artifact endpoint can serve (the Table-1 filters at the standard
        sweep wordlengths), so population-scale clients discover artifacts
        by walking pages instead of guessing query strings.  Cursor
        semantics mirror :meth:`jobs_overview`.
        """
        page_size = self._clamp_limit(limit)
        entries = artifact_catalog_entries()
        if cursor:
            entries = [e for e in entries if e["id"] > cursor]
        page = entries[:page_size]
        next_cursor = (
            page[-1]["id"] if len(entries) > page_size and page else None
        )
        return {"artifacts": page, "next_cursor": next_cursor}

    def result(self, job_id: str) -> str:
        return self.store.read_result(job_id)

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a queued or running job (the supervisor's should-stop
        poll aborts a running sweep within about one task budget; the
        dispatcher's completion loses to this transition and is
        discarded)."""
        record = self.store.transition(
            job_id, JobState.CANCELLED,
            error="cancelled by client", error_type="Cancelled",
            finished_at=time.time(),
        )
        return record.public_view()

    def artifact(
        self,
        kind: str,
        filter_index: int,
        wordlength: int,
        scaling: str = "maximal",
        representation: str = "csd",
    ) -> Tuple[str, str]:
        """Generate (or serve from cache) one artifact; (text, media type)."""
        try:
            scheme = ScalingScheme(scaling)
        except ValueError:
            raise SpecError(
                f"unknown scaling {scaling!r}; choose from "
                f"{[s.value for s in ScalingScheme]}"
            )
        try:
            rep = Representation(representation)
        except ValueError:
            raise SpecError(
                f"unknown representation {representation!r}; choose from "
                f"{[r.value for r in Representation]}"
            )
        text = fetch_artifact(
            filter_index, wordlength, kind, scaling=scheme,
            representation=rep,
        )
        return text, ARTIFACT_MEDIA_TYPES[kind]

    def ready(self) -> bool:
        return (
            self._started
            and not self.draining
            and self.breaker.state != "open"
        )

    # -- the dispatcher --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._draining.is_set():
            job_id = self.queue.pop(timeout=0.25)
            if job_id is None:
                if self.queue.closed:
                    return
                self._refill_queue()
                continue
            self._run_job(job_id)
        # Drain: stop pulling; anything still queued persists in the store.

    def _refill_queue(self) -> None:
        """Re-enqueue durably-queued jobs that missed a queue slot.

        Covers the two paths where a job is queued in the store but absent
        from the in-memory queue: an enqueue race at submit time, and a
        restart that recovered more queued jobs than the queue holds.
        """
        if self.queue.depth() > 0:
            return
        for record in self.store.jobs_in(JobState.QUEUED):
            try:
                self.queue.push(record.tenant, record.job_id)
            except QueueFull:
                break

    def _run_job(self, job_id: str) -> None:
        # Revalidate against the durable truth: the job may have been
        # cancelled or expired while queued.
        try:
            record = self.store.get(job_id)
        except JobStateError:
            return
        if record.state != JobState.QUEUED:
            return
        # updated_at was stamped when the job entered QUEUED (submit or
        # recovery requeue), so now-minus-then is the queue wait.
        queue_wait = max(0.0, time.time() - record.updated_at)
        # expires_at was set at submit time (the deadline covers queue
        # wait + run), so the transition only stamps the start.
        try:
            record = self.store.transition(
                job_id, JobState.RUNNING,
                started_at=time.time(),
                attempts=record.attempts + 1,
            )
        except JobStateError:
            return  # lost the race to cancel/expire
        self.admission.job_started()
        obs_metrics.histogram(
            "repro_service_queue_wait_seconds"
        ).observe(queue_wait)
        started = time.monotonic()
        rebuilds = 0
        try:
            # Adopt the job's durable trace context: on a restarted server
            # this is what stitches the resumed run into the submit-time
            # trace (the link resolves to the original request's span once
            # the per-process files are merged).
            with obs.trace_context(
                (record.trace_id, record.trace_link)
                if record.trace_id else None
            ), obs.span(
                "service.job", job_id=job_id, tenant=record.tenant,
                attempt=record.attempts, resumed=record.resumed,
                queue_wait_s=round(queue_wait, 6),
            ):
                report, result_text = self._execute(record)
            rebuilds = report.pool_rebuilds
            self.store.write_result(job_id, result_text)
            self.store.transition(
                job_id, JobState.COMPLETED,
                finished_at=time.time(),
                quarantined=len(report.quarantined_tasks),
                pool_rebuilds=report.pool_rebuilds,
                retries=report.retries,
            )
            obs_metrics.counter(
                "repro_service_jobs_total", status="completed"
            ).inc()
        except JobStateError:
            # The reaper or a cancel won the terminal transition while the
            # sweep was running; its result is simply discarded.
            obs_metrics.counter(
                "repro_service_jobs_total", status="discarded"
            ).inc()
        except SweepAborted as exc:
            # The sweep stopped itself mid-run: the job deadline passed or
            # a cancel/expire landed in the store while it ran.  If the
            # reaper has not already moved the job, record the expiry here;
            # either way the partial work is journaled, so a resubmission
            # resumes instead of recomputing.
            try:
                self.store.transition(
                    job_id, JobState.EXPIRED,
                    error=str(exc), error_type="Expired",
                    finished_at=time.time(),
                )
            except JobStateError:
                pass
            obs_metrics.counter(
                "repro_service_jobs_total", status="aborted"
            ).inc()
        except ReproError as exc:
            self._fail_job(job_id, exc)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self._fail_job(job_id, exc)
        finally:
            elapsed = time.monotonic() - started
            obs_metrics.histogram(
                "repro_service_run_seconds"
            ).observe(elapsed)
            self.admission.job_finished(elapsed, rebuilds)

    def _fail_job(self, job_id: str, exc: BaseException) -> None:
        try:
            self.store.transition(
                job_id, JobState.FAILED,
                error=str(exc), error_type=type(exc).__name__,
                finished_at=time.time(),
            )
        except JobStateError:
            return
        obs_metrics.counter(
            "repro_service_jobs_total", status="failed"
        ).inc()

    def _execute(self, record) -> Tuple[object, str]:
        """Run one job's sweep under supervision; returns (report, json)."""
        spec = record.spec
        job_id = record.job_id

        def should_stop() -> Optional[str]:
            # Polled by the supervisor between task completions, so a
            # cancel or reaper expiry stops a *running* multi-task sweep
            # within one task budget instead of letting it occupy the
            # dispatcher for N_tasks x task_deadline_s.
            try:
                current = self.store.get(job_id)
            except JobStateError:
                return f"job {job_id} record disappeared"
            if current.state in (JobState.CANCELLED, JobState.EXPIRED):
                return f"job {job_id} was {current.state} while running"
            return None

        report = run_sweep_supervised(
            experiment_ids=list(spec.experiments),
            jobs=self.config.sweep_jobs,
            cache_dir=None,  # configured process-wide in __init__
            filter_indices=(
                list(spec.filters) if spec.filters is not None else None
            ),
            wordlengths=(
                list(spec.wordlengths)
                if spec.wordlengths is not None else None
            ),
            task_deadline_s=record.task_deadline_s,
            journal_dir=self.config.journal_dir,
            resume=True,
            max_retries=self.config.max_retries,
            chaos=self.config.chaos,
            # The job-level deadline caps every task's budget at the
            # remaining wall-clock time and aborts the sweep once passed.
            deadline_at=record.expires_at,
            should_stop=should_stop,
        )
        return report, sweep_to_json(report.outcomes)


def _number_or_none(value: object, name: str) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{name} must be a number, got {value!r}")
    return float(value)


def _route_pattern(route: str) -> str:
    """Collapse a concrete path to its route template for metric labels.

    Label cardinality must stay bounded: every job id or artifact kind as
    its own series would grow the registry without limit, and an arbitrary
    unmatched path (scanners probe anything) must not mint series at all.
    """
    parts = [p for p in route.split("/") if p]
    if route in ("/healthz", "/readyz", "/metrics"):
        return route
    if parts[:2] == ["v1", "jobs"]:
        if len(parts) == 2:
            return "/v1/jobs"
        if len(parts) == 3:
            return "/v1/jobs/{id}"
        if len(parts) == 4 and parts[3] == "result":
            return "/v1/jobs/{id}/result"
    if parts[:2] == ["v1", "artifacts"]:
        if len(parts) == 2:
            return "/v1/artifacts"
        if len(parts) == 3:
            return "/v1/artifacts/{kind}"
    return "other"


# -- stdlib HTTP front end -----------------------------------------------------


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Routes requests to the engine; maps exception types to statuses."""

    service: SynthesisService  # installed by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib naming
        pass  # request logging goes through obs spans, not stderr

    def _send(
        self,
        status: int,
        body: str,
        content_type: str = "application/json",
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._send(
            status, json.dumps(payload, sort_keys=True), headers=headers
        )

    def _send_error_payload(self, status: int, exc: BaseException) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        retry_after = getattr(exc, "retry_after_s", None)
        if retry_after is not None:
            headers = (("Retry-After", str(int(retry_after))),)
        self._send_json(
            status,
            {"error": type(exc).__name__, "message": str(exc)},
            headers=headers,
        )

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("request body must be a JSON object")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SpecError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        status = 500
        started = time.monotonic()
        # Adopt the caller's trace context for exactly this request.
        # Adopting (possibly None) every time matters: HTTP/1.1 keep-alive
        # reuses this handler thread, so a leftover context from the
        # previous request must never leak into the next one.
        ctx = obs.parse_traceparent(self.headers.get("traceparent"))
        try:
            with obs.trace_context(ctx), obs.span(
                "service.request", route=route, method=method
            ):
                status = self._route(method, route, parse_qs(parsed.query))
        except SpecError as exc:
            status = 400
            self._send_error_payload(status, exc)
        except CircuitOpen as exc:
            status = 503
            self._send_error_payload(status, exc)
        except AdmissionRejected as exc:
            status = 429
            self._send_error_payload(status, exc)
        except StoreUnavailable as exc:
            # A failed WAL append: the job was never acknowledged.  503 +
            # Retry-After tells a resilient client to back off and replay
            # the (idempotent) submission once the disk recovers.
            status = 503
            self._send_error_payload(status, exc)
        except JobStateError as exc:
            status = 404 if "unknown job" in str(exc) else 409
            self._send_error_payload(status, exc)
        except ServiceError as exc:
            status = 400
            self._send_error_payload(status, exc)
        except BrokenPipeError:
            return  # client went away mid-response; nothing to send
        except Exception as exc:  # noqa: BLE001 - HTTP isolation boundary
            status = 500
            try:
                self._send_error_payload(status, exc)
            except OSError:
                pass
        finally:
            obs_metrics.counter(
                "repro_service_requests_total",
                method=method, status=str(status),
            ).inc()
            obs_metrics.histogram(
                "repro_http_request_seconds",
                route=_route_pattern(route), method=method,
            ).observe(time.monotonic() - started)
            # Per-request durability: a SIGKILL between requests then loses
            # no finished request span, so cross-restart trace links (the
            # job record points at the submitting request's span) resolve.
            obs.flush()

    # -- routing --------------------------------------------------------------

    def _route(self, method: str, route: str, query) -> int:
        service = self.service
        parts = [p for p in route.split("/") if p]

        if method == "GET" and route == "/healthz":
            self._send(200, "ok\n", content_type="text/plain")
            return 200
        if method == "GET" and route == "/readyz":
            if service.ready():
                self._send(200, "ready\n", content_type="text/plain")
                return 200
            self._send(503, "not ready\n", content_type="text/plain")
            return 503
        if method == "GET" and route == "/metrics":
            self._send(
                200,
                obs_metrics.DEFAULT_REGISTRY.exposition(),
                content_type="text/plain; version=0.0.4",
            )
            return 200

        if method == "POST" and route == "/v1/jobs":
            view, created = service.submit(self._read_body())
            self._send_json(201 if created else 200, view)
            return 201 if created else 200
        if method == "GET" and route == "/v1/jobs":
            self._send_json(200, service.jobs_overview(
                limit=_query_opt_int(query, "limit"),
                cursor=_query_str(query, "cursor", None),
            ))
            return 200
        if method == "GET" and route == "/v1/artifacts":
            self._send_json(200, service.artifact_catalog(
                limit=_query_opt_int(query, "limit"),
                cursor=_query_str(query, "cursor", None),
            ))
            return 200
        if parts[:2] == ["v1", "jobs"] and len(parts) >= 3:
            job_id = parts[2]
            if method == "GET" and len(parts) == 3:
                view = service.status(
                    job_id,
                    wait_s=_query_opt_float(query, "wait"),
                    etag=_query_opt_int(query, "etag"),
                )
                self._send_json(
                    200, view,
                    headers=(("ETag", str(view["revision"])),),
                )
                return 200
            if method == "DELETE" and len(parts) == 3:
                self._send_json(200, service.cancel(job_id))
                return 200
            if method == "GET" and len(parts) == 4 and parts[3] == "result":
                self._send(200, service.result(job_id))
                return 200
        if (
            method == "GET"
            and parts[:2] == ["v1", "artifacts"]
            and len(parts) == 3
        ):
            kind = parts[2]
            if kind not in ARTIFACT_KINDS:
                raise SpecError(
                    f"unknown artifact kind {kind!r}; choose from "
                    f"{ARTIFACT_KINDS}"
                )
            text, media_type = service.artifact(
                kind,
                _query_int(query, "filter"),
                _query_int(query, "wordlength"),
                scaling=_query_str(query, "scaling", "maximal"),
                representation=_query_str(query, "representation", "csd"),
            )
            self._send(200, text, content_type=media_type)
            return 200

        self._send_json(
            404, {"error": "NotFound", "message": f"no route {route}"}
        )
        return 404

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")


def _query_int(query: Dict[str, List[str]], name: str) -> int:
    values = query.get(name)
    if not values:
        raise SpecError(f"missing required query parameter {name!r}")
    try:
        return int(values[0])
    except ValueError as exc:
        raise SpecError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from exc


def _query_str(query: Dict[str, List[str]], name: str, default):
    values = query.get(name)
    return values[0] if values else default


def _query_opt_int(
    query: Dict[str, List[str]], name: str
) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError as exc:
        raise SpecError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from exc


def _query_opt_float(
    query: Dict[str, List[str]], name: str
) -> Optional[float]:
    values = query.get(name)
    if not values:
        return None
    try:
        return float(values[0])
    except ValueError as exc:
        raise SpecError(
            f"query parameter {name!r} must be a number, got {values[0]!r}"
        ) from exc


def make_server(
    config: ServiceConfig,
) -> Tuple[ThreadingHTTPServer, SynthesisService]:
    """Build (but do not start serving) the engine plus its HTTP server."""
    service = SynthesisService(config)
    service.start()

    class _Handler(ServiceHTTPHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer((config.host, config.port), _Handler)
    server.daemon_threads = True
    return server, service
