"""Per-request budget policy and the over-deadline job reaper.

Two distinct deadlines govern every job:

* the **task deadline** — threaded into the sweep's per-task
  :class:`~repro.robust.SolverBudget` so each synthesis task stays
  interruptible, and
* the **job deadline** — a wall-clock bound that starts at *submit* time
  (it covers queue wait plus run time; a restart restarts the clock),
  enforced by the :class:`Reaper`, which periodically marks over-deadline
  jobs ``expired`` in the store — queued jobs stuck behind a backlog
  included.  A running sweep is cancelled cooperatively: the supervisor
  re-checks the deadline and the store's cancelled/expired state between
  task completions (recomputing each task's budget from the remaining
  time) and aborts with :class:`~repro.errors.SweepAborted`, so even a
  multi-task sweep terminates within about one task budget of the
  deadline instead of running ``N_tasks x task_deadline_s`` past it.

:class:`BudgetPolicy` holds the server-side ceilings.  Requests may ask for
smaller budgets; asking for more than the ceiling is *clamped* (recorded on
the job as ``clamped`` rather than rejected, so a client pointing at a more
generous server keeps working), while non-positive budgets are a
:class:`~repro.errors.SpecError`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import SpecError
from ..obs import metrics as obs_metrics

__all__ = ["BudgetPolicy", "Reaper"]


@dataclass(frozen=True)
class BudgetPolicy:
    """Server-side deadline ceilings and defaults (seconds)."""

    default_task_deadline_s: float = 30.0
    max_task_deadline_s: float = 120.0
    default_job_deadline_s: float = 300.0
    max_job_deadline_s: float = 1800.0

    def __post_init__(self) -> None:
        for field in (
            "default_task_deadline_s",
            "max_task_deadline_s",
            "default_job_deadline_s",
            "max_job_deadline_s",
        ):
            if getattr(self, field) <= 0.0:
                raise SpecError(f"{field} must be > 0")
        if self.default_task_deadline_s > self.max_task_deadline_s:
            raise SpecError("default task deadline exceeds the ceiling")
        if self.default_job_deadline_s > self.max_job_deadline_s:
            raise SpecError("default job deadline exceeds the ceiling")

    def resolve(
        self,
        task_deadline_s: Optional[float],
        job_deadline_s: Optional[float],
    ) -> Tuple[float, float, bool]:
        """Resolve requested budgets against policy.

        Returns ``(task_deadline_s, job_deadline_s, clamped)`` where
        ``clamped`` records that at least one requested budget exceeded its
        ceiling and was reduced.  Non-positive requests are rejected.
        """
        clamped = False
        if task_deadline_s is None:
            task = self.default_task_deadline_s
        else:
            if task_deadline_s <= 0.0:
                raise SpecError(
                    f"task_deadline_s must be > 0, got {task_deadline_s}"
                )
            task = float(task_deadline_s)
            if task > self.max_task_deadline_s:
                task = self.max_task_deadline_s
                clamped = True
        if job_deadline_s is None:
            job = self.default_job_deadline_s
        else:
            if job_deadline_s <= 0.0:
                raise SpecError(
                    f"deadline_s must be > 0, got {job_deadline_s}"
                )
            job = float(job_deadline_s)
            if job > self.max_job_deadline_s:
                job = self.max_job_deadline_s
                clamped = True
        return task, job, clamped


class Reaper:
    """Background thread expiring jobs whose wall-clock deadline passed.

    ``sweep`` is a callable returning the non-terminal job records to check
    (each must expose ``job_id`` and ``expires_at``); ``expire`` is called
    with each over-deadline job id and must tolerate losing the race with a
    concurrent legal transition (the store raises
    :class:`~repro.errors.JobStateError`, which the reaper swallows — the
    job reached a terminal state first, so there is nothing left to reap).
    """

    def __init__(
        self,
        sweep: Callable[[], list],
        expire: Callable[[str], None],
        interval_s: float = 0.5,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0.0:
            raise SpecError(f"interval_s must be > 0, got {interval_s}")
        self._sweep = sweep
        self._expire = expire
        self.interval_s = interval_s
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def reap_once(self) -> int:
        """One reaper pass; returns how many jobs were expired."""
        from ..errors import JobStateError

        now = self._clock()
        expired = 0
        for record in self._sweep():
            deadline = getattr(record, "expires_at", None)
            if deadline is None or now < deadline:
                continue
            try:
                self._expire(record.job_id)
            except JobStateError:
                continue
            expired += 1
            obs_metrics.counter("repro_service_jobs_expired_total").inc()
        return expired

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.reap_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-service-reaper", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
