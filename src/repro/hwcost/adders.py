"""Adder area/delay/energy models calibrated to 0.25 µm standard cells.

The paper reports complexity "when using carry lookahead adders synthesized
from the Synopsys DesignWare library in 0.25 µ technology".  We cannot run
DesignWare, so these analytical models stand in (DESIGN.md §2): constants are
chosen to match the published characteristics of 0.25 µm synthesis — a full
adder cell near 120 µm² and 0.45 ns, CLA delay growing logarithmically with
a ~4-bit lookahead block, CLA area ~40 % above ripple.

Only *ratios* between architectures matter for the reproduction; the knobs
(adder family, bit width) move costs exactly the way the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Callable, Dict

from ..arch.metrics import node_bitwidths
from ..arch.netlist import ShiftAddNetlist

__all__ = [
    "AdderModel",
    "RIPPLE_CARRY",
    "CARRY_LOOKAHEAD",
    "CARRY_SAVE",
    "ADDER_MODELS",
    "netlist_area",
    "netlist_critical_path",
    "weighted_adder_cost",
]


@dataclass(frozen=True)
class AdderModel:
    """Area (µm²), delay (ns) and energy (pJ) of one adder vs bit width."""

    name: str
    area_fn: Callable[[int], float]
    delay_fn: Callable[[int], float]
    energy_fn: Callable[[int], float]

    def area(self, bits: int) -> float:
        """Adder area in um^2 at the given bit width."""
        return self.area_fn(max(1, bits))

    def delay(self, bits: int) -> float:
        """Adder delay in ns at the given bit width."""
        return self.delay_fn(max(1, bits))

    def energy(self, bits: int) -> float:
        """Adder energy in pJ at the given bit width."""
        return self.energy_fn(max(1, bits))


# 0.25 µm-flavoured constants (see module docstring).
_FA_AREA_UM2 = 120.0
_FA_DELAY_NS = 0.45
_FA_ENERGY_PJ = 0.08
_CLA_AREA_OVERHEAD = 1.4
_CLA_BLOCK_BITS = 4
_CLA_STAGE_DELAY_NS = 0.55

RIPPLE_CARRY = AdderModel(
    name="ripple_carry",
    area_fn=lambda bits: _FA_AREA_UM2 * bits,
    delay_fn=lambda bits: _FA_DELAY_NS * bits,
    energy_fn=lambda bits: _FA_ENERGY_PJ * bits,
)

CARRY_LOOKAHEAD = AdderModel(
    name="carry_lookahead",
    area_fn=lambda bits: _FA_AREA_UM2 * _CLA_AREA_OVERHEAD * bits,
    delay_fn=lambda bits: _CLA_STAGE_DELAY_NS
    * (1 + ceil(log2(max(2, ceil(bits / _CLA_BLOCK_BITS))))),
    energy_fn=lambda bits: _FA_ENERGY_PJ * 1.25 * bits,
)

CARRY_SAVE = AdderModel(
    name="carry_save",
    area_fn=lambda bits: _FA_AREA_UM2 * bits,
    delay_fn=lambda bits: _FA_DELAY_NS,  # one full-adder level, width-independent
    energy_fn=lambda bits: _FA_ENERGY_PJ * bits,
)

ADDER_MODELS: Dict[str, AdderModel] = {
    model.name: model
    for model in (RIPPLE_CARRY, CARRY_LOOKAHEAD, CARRY_SAVE)
}


def netlist_area(
    netlist: ShiftAddNetlist,
    input_bits: int,
    model: AdderModel = CARRY_LOOKAHEAD,
) -> float:
    """Total adder area of the multiplier block in µm²."""
    widths = node_bitwidths(netlist, input_bits)
    return sum(model.area(widths[node.id]) for node in netlist.nodes[1:])


def netlist_critical_path(
    netlist: ShiftAddNetlist,
    input_bits: int,
    model: AdderModel = CARRY_LOOKAHEAD,
) -> float:
    """Longest register-to-register combinational delay through the block (ns)."""
    widths = node_bitwidths(netlist, input_bits)
    arrival = [0.0] * len(netlist)
    for node in netlist.nodes[1:]:
        ready = max(arrival[node.a.node], arrival[node.b.node])
        arrival[node.id] = ready + model.delay(widths[node.id])
    return max(arrival, default=0.0)


def weighted_adder_cost(
    netlist: ShiftAddNetlist,
    input_bits: int,
    model: AdderModel = CARRY_LOOKAHEAD,
) -> float:
    """Area-weighted adder count, normalized to one input-width adder.

    This is the metric behind the paper's DesignWare-normalized numbers: an
    adder twice as wide counts roughly twice.
    """
    reference = model.area(input_bits)
    return netlist_area(netlist, input_bits, model) / reference
