"""Interconnect/fanout cost model — the physical story behind β (paper §3.3).

In deep sub-micron technologies, sharing a computation widely means driving a
high-fanout, long wire; the paper folds this into the benefit function via
β < 0.5.  This module quantifies the effect on a finished netlist: per-node
fanout, a wire-cost estimate, and a heuristic mapping from a technology's
relative wire cost to a recommended β.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arch.netlist import ShiftAddNetlist

__all__ = ["FanoutReport", "fanout_counts", "interconnect_cost", "recommended_beta"]


@dataclass(frozen=True)
class FanoutReport:
    """Fanout structure of one netlist."""

    fanout: List[int]
    max_fanout: int
    total_fanout: int

    @property
    def mean_fanout(self) -> float:
        """Average fanout over the internal (non-input) nodes."""
        internal = self.fanout[1:]
        if not internal:
            return 0.0
        return sum(internal) / len(internal)


def fanout_counts(netlist: ShiftAddNetlist) -> FanoutReport:
    """Count consumers of every node (operand uses + tap outputs)."""
    fanout = [0] * len(netlist)
    for node in netlist.nodes[1:]:
        fanout[node.a.node] += 1
        fanout[node.b.node] += 1
    for ref in netlist.outputs.values():
        if ref is not None:
            fanout[ref.node] += 1
    return FanoutReport(
        fanout=fanout,
        max_fanout=max(fanout, default=0),
        total_fanout=sum(fanout),
    )


def interconnect_cost(
    netlist: ShiftAddNetlist, wire_cost_per_fanout: float = 1.0
) -> float:
    """Superlinear wire cost: each net pays ``fanout ** 1.5``.

    High-fanout nets need buffering and longer routes, so the penalty grows
    faster than linearly — the effect that makes "compute more, share less"
    (low β) attractive in aggressive technologies.
    """
    report = fanout_counts(netlist)
    return wire_cost_per_fanout * sum(f**1.5 for f in report.fanout if f > 0)


def recommended_beta(wire_cost_ratio: float) -> float:
    """Map a technology's wire/gate cost ratio to a benefit-function β.

    ``wire_cost_ratio`` ~0 (wires free) recommends the neutral β = 0.5;
    increasingly expensive wires push β down toward 0.25, de-emphasizing
    frequency (sharing) exactly as the paper prescribes.  Clamped to
    [0.25, 0.5].
    """
    if wire_cost_ratio < 0:
        raise ValueError("wire_cost_ratio must be non-negative")
    beta = 0.5 - 0.25 * min(1.0, wire_cost_ratio)
    return max(0.25, min(0.5, beta))
