"""Consolidated hardware cost reports for architecture comparison.

One call produces every figure of merit the paper discusses for a synthesized
multiplier block — adders, depth, CLA/RCA area and critical path, switching
power, fanout/interconnect — so methods can be compared on a single page
(used by ``examples/compare_methods.py`` and the cost integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..arch.metrics import analyze
from ..arch.netlist import ShiftAddNetlist
from .adders import CARRY_LOOKAHEAD, AdderModel, netlist_area, netlist_critical_path
from .interconnect import fanout_counts, interconnect_cost
from .power import estimate_power

__all__ = ["CostReport", "cost_report", "compare_costs"]


@dataclass(frozen=True)
class CostReport:
    """All figures of merit for one multiplier-block netlist."""

    adders: int
    depth: int
    area_um2: float
    critical_path_ns: float
    energy_pj: float
    toggles_per_sample: float
    max_fanout: int
    interconnect: float
    register_bits_tdf: int

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain name -> value mapping."""
        return {
            "adders": self.adders,
            "depth": self.depth,
            "area_um2": self.area_um2,
            "critical_path_ns": self.critical_path_ns,
            "energy_pj": self.energy_pj,
            "toggles_per_sample": self.toggles_per_sample,
            "max_fanout": self.max_fanout,
            "interconnect": self.interconnect,
            "register_bits_tdf": self.register_bits_tdf,
        }


def cost_report(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    input_bits: int = 16,
    model: AdderModel = CARRY_LOOKAHEAD,
    power_samples: int = 128,
) -> CostReport:
    """Evaluate every cost model on one netlist."""
    stats = analyze(netlist, tap_names, input_bits)
    power = estimate_power(netlist, input_bits, power_samples)
    fanout = fanout_counts(netlist)
    # TDF structural registers carry the accumulating partial sums.
    out_bits = stats.max_node_bits + max(1, len(tap_names)).bit_length()
    return CostReport(
        adders=stats.adders,
        depth=stats.depth,
        area_um2=netlist_area(netlist, input_bits, model),
        critical_path_ns=netlist_critical_path(netlist, input_bits, model),
        energy_pj=power.energy_pj,
        toggles_per_sample=power.toggles_per_sample,
        max_fanout=fanout.max_fanout,
        interconnect=interconnect_cost(netlist),
        register_bits_tdf=stats.structural_registers * out_bits,
    )


def compare_costs(
    architectures: Dict[str, tuple],
    input_bits: int = 16,
    model: AdderModel = CARRY_LOOKAHEAD,
) -> Dict[str, CostReport]:
    """Cost reports for a labelled set of ``(netlist, tap_names)`` pairs."""
    return {
        label: cost_report(netlist, tap_names, input_bits, model)
        for label, (netlist, tap_names) in architectures.items()
    }
