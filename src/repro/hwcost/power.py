"""Switching-activity power proxy for shift-add networks.

Dynamic power in a multiplierless filter is dominated by bit toggles at the
adder outputs.  We simulate the (linear) network over a deterministic
pseudo-random input stream and count Hamming toggles between consecutive
outputs of every node within its significant width — a standard
architecture-level power proxy that lets low-power claims be compared without
a gate-level netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..arch.metrics import node_bitwidths
from ..arch.netlist import ShiftAddNetlist
from ..arch.simulate import evaluate_nodes

__all__ = ["PowerReport", "lcg_stream", "toggle_activity", "estimate_power"]

_LCG_MODULUS = 2**31
_LCG_MULTIPLIER = 1103515245
_LCG_INCREMENT = 12345


def lcg_stream(length: int, input_bits: int = 16, state: int = 2003) -> List[int]:
    """Deterministic signed pseudo-random samples spanning the input width."""
    samples: List[int] = []
    span = 1 << input_bits
    half = span >> 1
    for _ in range(length):
        state = (_LCG_MULTIPLIER * state + _LCG_INCREMENT) % _LCG_MODULUS
        samples.append((state % span) - half)
    return samples


@dataclass(frozen=True)
class PowerReport:
    """Toggle statistics of one netlist over one stimulus block."""

    total_toggles: int
    toggles_per_node: List[int]
    num_samples: int
    energy_pj: float

    @property
    def toggles_per_sample(self) -> float:
        """Average bit toggles per processed sample."""
        if self.num_samples <= 1:
            return 0.0
        return self.total_toggles / (self.num_samples - 1)


def _masked(value: int, bits: int) -> int:
    """Two's-complement image of ``value`` in ``bits`` bits."""
    return value & ((1 << bits) - 1)


def toggle_activity(
    netlist: ShiftAddNetlist,
    samples: Sequence[int],
    input_bits: int = 16,
) -> List[int]:
    """Per-node toggle counts across consecutive samples."""
    widths = node_bitwidths(netlist, input_bits)
    toggles = [0] * len(netlist)
    previous = None
    for sample in samples:
        outputs = evaluate_nodes(netlist, sample)
        if previous is not None:
            for node_id, (now, before) in enumerate(zip(outputs, previous)):
                flipped = _masked(now, widths[node_id]) ^ _masked(
                    before, widths[node_id]
                )
                toggles[node_id] += bin(flipped).count("1")
        previous = outputs
    return toggles


def estimate_power(
    netlist: ShiftAddNetlist,
    input_bits: int = 16,
    num_samples: int = 256,
    energy_per_toggle_pj: float = 0.005,
) -> PowerReport:
    """Simulate an LCG stimulus and summarize switching activity.

    ``energy_per_toggle_pj`` is a node-output capacitance proxy; only ratios
    between architectures are meaningful (same caveat as the adder models).
    """
    samples = lcg_stream(num_samples, input_bits)
    toggles = toggle_activity(netlist, samples, input_bits)
    total = sum(toggles)
    return PowerReport(
        total_toggles=total,
        toggles_per_node=toggles,
        num_samples=num_samples,
        energy_pj=total * energy_per_toggle_pj,
    )
