"""Hardware cost models: adder families, switching power, interconnect/β."""

from .adders import (
    ADDER_MODELS,
    CARRY_LOOKAHEAD,
    CARRY_SAVE,
    RIPPLE_CARRY,
    AdderModel,
    netlist_area,
    netlist_critical_path,
    weighted_adder_cost,
)
from .interconnect import (
    FanoutReport,
    fanout_counts,
    interconnect_cost,
    recommended_beta,
)
from .power import PowerReport, estimate_power, lcg_stream, toggle_activity
from .report import CostReport, compare_costs, cost_report

__all__ = [
    "ADDER_MODELS",
    "AdderModel",
    "CARRY_LOOKAHEAD",
    "CARRY_SAVE",
    "CostReport",
    "compare_costs",
    "cost_report",
    "FanoutReport",
    "PowerReport",
    "RIPPLE_CARRY",
    "estimate_power",
    "fanout_counts",
    "interconnect_cost",
    "lcg_stream",
    "netlist_area",
    "netlist_critical_path",
    "recommended_beta",
    "toggle_activity",
    "weighted_adder_cost",
]
